"""The simulation loop: a time-ordered queue of callbacks.

Kept intentionally minimal — the email-system models carry the semantics;
the engine only guarantees deterministic time ordering.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (e.g. scheduling into the past)."""


class _Recurrence:
    """A self-re-arming recurring event.

    A class rather than a closure so that a scheduled recurrence — like
    everything else sitting in the event queue — survives the pickling
    pass of a simulation checkpoint (:mod:`repro.core.recovery`).
    """

    __slots__ = ("simulator", "interval", "action", "until", "label")

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        action: Callable[[], None],
        until: Optional[float],
        label: str,
    ) -> None:
        self.simulator = simulator
        self.interval = interval
        self.action = action
        self.until = until
        self.label = label

    def __call__(self) -> None:
        self.action()
        next_time = self.simulator.now + self.interval
        if self.until is None or next_time < self.until:
            self.simulator.schedule(next_time, self, self.label)


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(5.0, lambda: seen.append("b"))
    >>> _ = sim.schedule(1.0, lambda: seen.append("a"))
    >>> sim.run()
    >>> seen
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._cancelled = 0  # cancelled events still sitting in the queue
        self.events_processed = 0
        self.compactions = 0

    def schedule(
        self, at: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *action* to run at absolute time *at*."""
        if at < self.now:
            raise SimulationError(
                f"cannot schedule event at {at} before current time {self.now}"
            )
        event = Event(
            time=float(at), seq=self._seq, action=action, label=label, owner=self
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def _on_cancel(self) -> None:
        """Event.cancel() hook: count the dead entry, compact when dead
        entries outnumber live ones (keeps mass-cancellation workloads from
        dragging a mostly-dead heap around)."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Safe at any point: ordering is the total ``(time, seq)`` key, so a
        rebuilt heap pops in exactly the same order as the original.
        """
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self.compactions += 1

    def schedule_after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *action* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, action, label)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
        label: str = "",
    ) -> None:
        """Schedule *action* at ``start, start+interval, ...`` up to *until*.

        *until* is half-open (exclusive): a firing landing exactly at
        *until* does not run, matching :meth:`run`'s ``until`` semantics —
        a recurrence bounded by a horizon never fires at the horizon
        itself. *start* defaults to ``now + interval``; an explicit *start*
        must not lie in the past.

        The recurrence re-arms itself after each firing, so *action* may
        inspect or mutate simulation state freely.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        if start is not None and start < self.now:
            raise SimulationError(
                f"recurrence start {start} is before current time {self.now}; "
                f"schedule_every cannot begin in the past"
            )
        first = self.now + interval if start is None else start
        fire = _Recurrence(self, interval, action, until, label)
        if until is None or first < until:
            self.schedule(first, fire, label)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order until the queue drains or *until*.

        *until* is half-open (exclusive): events scheduled exactly at
        *until* are **not** processed, so consecutive ``run(until=...)``
        calls never double-fire and a ``schedule_every(..., until=h)``
        recurrence observes the same boundary. After a bounded run the
        clock rests at *until* even if the queue emptied earlier.
        """
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time >= until:
                break
            heapq.heappop(self._queue)
            event.owner = None  # off the queue: a late cancel() is a no-op
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = event.time
            event.action()
            self.events_processed += 1
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events — O(1)."""
        return len(self._queue) - self._cancelled
