"""Event objects for the discrete-event engine.

Two queue-entry kinds exist:

* :class:`Event` — one scheduled callback (cancellable);
* :class:`EventBatch` — a *sorted run* of many callbacks scheduled as a
  single heap entry (calendar-queue style).  The trace generator plans a
  whole simulated day of message arrivals at once; pushing them as one
  batch replaces tens of thousands of per-message heap operations with a
  handful, while the engine still interleaves the run correctly against
  every individually scheduled event (see :meth:`Simulator.run`).

The heap itself stores ``(time, seq, entry)`` tuples so that every heap
comparison is a C-level float/int compare instead of a Python ``__lt__``
call — on message-heavy workloads those comparisons used to be one of the
hottest lines of the whole simulation.
"""

from __future__ import annotations

from typing import Callable, Optional


class Event:
    """A scheduled callback.

    Ordering is ``(time, seq)``: ties on time break by insertion order,
    which makes runs fully deterministic regardless of heap internals.
    The ordering key lives in the heap tuple, not on the object; the
    object itself carries the callback and cancellation state.
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        owner: Optional[object] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        #: Back-reference to the owning simulator while queued; lets
        #: cancel() maintain the simulator's O(1) live-event accounting.
        self.owner = owner

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}, {self.label!r}{state})"

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._on_cancel()


class EventBatch:
    """A pre-sorted run of ``action(arg)`` calls sharing one heap entry.

    Struct-of-arrays on purpose: ``times``/``seqs``/``actions``/``args``
    are parallel columns, sorted by ``(time, seq)``.  The engine processes
    items from ``start`` onwards while no individually queued event is due
    before the next item; when one is, the remainder is pushed back keyed
    by its head item, so global ``(time, seq)`` order is exactly what
    per-item scheduling would have produced.

    Batch items are not individually cancellable — the only producers are
    bulk traffic sources (message arrivals), which nothing ever cancels.
    Batches pickle cleanly (plain lists + bound methods), so a checkpoint
    taken mid-run snapshots the unprocessed tail and resumes
    byte-identically.
    """

    __slots__ = ("times", "seqs", "actions", "args", "start", "label")

    def __init__(
        self,
        times: list,
        seqs: list,
        actions: list,
        args: list,
        label: str = "",
    ) -> None:
        self.times = times
        self.seqs = seqs
        self.actions = actions
        self.args = args
        #: Index of the first unprocessed item.
        self.start = 0
        self.label = label

    def __len__(self) -> int:
        return len(self.times)

    @property
    def remaining(self) -> int:
        """Items not yet processed."""
        return len(self.times) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventBatch({self.remaining}/{len(self.times)} pending, "
            f"{self.label!r})"
        )
