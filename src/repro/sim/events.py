"""Event objects for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, seq)``: ties on time break by insertion order, which
    makes runs fully deterministic regardless of heap internals.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True
