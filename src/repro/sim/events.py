"""Event objects for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, seq)``: ties on time break by insertion order, which
    makes runs fully deterministic regardless of heap internals.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Back-reference to the owning simulator while queued; lets cancel()
    #: maintain the simulator's O(1) live-event accounting.
    owner: Optional[object] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._on_cancel()
