"""CR vs content-filter comparison (the Erickson et al. claim, quantified).

The paper's §1 cites Erickson et al.: CR solutions "outperform traditional
systems like SpamAssassin, generating on average 1 % of false positives
with zero false negatives". This module reruns that comparison on our
simulated traffic:

* **content filter** — the naive-Bayes baseline, trained on an early slice
  of the deployment's labelled mail and evaluated on the rest;
* **CR system** — judged by what actually reached the inbox: a false
  negative is spam delivered (whitelist hits + spurious releases); a false
  positive is a legitimate message that never made it (its challenge
  unsolved, never rescued from the digest, eventually expired or still
  quarantined at window end).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

from repro.analysis.store import LogStore
from repro.baselines.naive_bayes import ClassifierScore, NaiveBayesFilter
from repro.core.message import MessageKind
from repro.core.spools import Category
from repro.util.render import TextTable
from repro.util.stats import safe_ratio


@dataclass(frozen=True)
class DefenceComparison:
    """FP/FN rates of the two defences over the same deployment."""

    bayes: ClassifierScore
    cr_spam_total: int
    cr_spam_delivered: int
    cr_legit_total: int
    cr_legit_lost: int
    train_fraction: float

    @property
    def cr_false_negative_rate(self) -> float:
        """Spam that reached an inbox despite the CR system."""
        return safe_ratio(self.cr_spam_delivered, self.cr_spam_total)

    @property
    def cr_false_positive_rate(self) -> float:
        """Legitimate mail the CR system never delivered."""
        return safe_ratio(self.cr_legit_lost, self.cr_legit_total)


def compare_defences(
    store: LogStore, train_fraction: float = 0.3
) -> DefenceComparison:
    """Train the Bayes baseline on the first *train_fraction* of accepted
    mail, evaluate both defences on the remainder.

    Single streaming pass: the dispatch table is consumed through one
    iterator (``islice`` for the training prefix, the remainder for the
    evaluation), never sliced — on a spilled or sharded store a slice
    would materialise every chunk back into memory, defeating the
    bounded-memory store. The release-id set is the only per-run state
    kept (releases are a tiny fraction of dispatches).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    dispatch = store.dispatch
    split = int(len(dispatch) * train_fraction)
    records = iter(dispatch)

    bayes = NaiveBayesFilter()
    bayes.train_from_records(islice(records, split))

    released = {r.msg_id for r in store.releases}
    tp = fp = tn = fn = 0
    spam_total = legit_total = 0
    spam_delivered = legit_lost = 0
    for record in records:
        is_spam = record.kind is MessageKind.SPAM
        # Bayes confusion counts (what score_classifier would tally).
        flagged = bayes.classify(record.subject)
        if is_spam and flagged:
            tp += 1
        elif is_spam:
            fn += 1
        elif flagged:
            fp += 1
        else:
            tn += 1
        # CR verdict: what actually reached the inbox.
        quarantined = (
            record.category is Category.GRAY and record.filter_drop is None
        )
        delivered = (
            record.category is Category.WHITE
            or (quarantined and record.msg_id in released)
        )
        if is_spam:
            spam_total += 1
            if delivered:
                spam_delivered += 1
        elif record.kind is MessageKind.LEGIT and record.env_from:
            # Newsletters/marketing are excluded (whether bulk mail is
            # "wanted" is user-specific), and so are null-sender bounce
            # notifications (quarantined by design, not person-to-person
            # mail): the paper's FP discussion is about real correspondents.
            legit_total += 1
            if not delivered:
                legit_lost += 1
    return DefenceComparison(
        bayes=ClassifierScore(tp, fp, tn, fn),
        cr_spam_total=spam_total,
        cr_spam_delivered=spam_delivered,
        cr_legit_total=legit_total,
        cr_legit_lost=legit_lost,
        train_fraction=train_fraction,
    )


def build_table(comparison: DefenceComparison) -> TextTable:
    table = TextTable(
        headers=["defence", "false positives (legit lost)", "false negatives (spam in)"],
        title=(
            "CR system vs naive-Bayes content filter "
            "(Erickson et al.: CR ~1% FP, 0% FN)"
        ),
    )
    table.add_row(
        "naive Bayes (content)",
        f"{100.0 * comparison.bayes.false_positive_rate:.2f}%",
        f"{100.0 * comparison.bayes.false_negative_rate:.2f}%",
    )
    table.add_row(
        "challenge-response",
        f"{100.0 * comparison.cr_false_positive_rate:.2f}%",
        f"{100.0 * comparison.cr_false_negative_rate:.4f}%",
    )
    return table


def render(store: LogStore) -> str:
    return build_table(compare_defences(store)).render()


# ----------------------------------------------------------------------
# Multi-seed sweep: the Erickson comparison over independent deployments.
# One simulated deployment gives one FP/FN point per defence; sweeping
# seeds (fanned out over worker processes) shows the spread behind the
# paper's "1 % FP, zero FN" headline numbers.
# ----------------------------------------------------------------------


def sweep_defences(
    preset="tiny",
    seeds=(3, 5, 7),
    jobs: int = 1,
    runner=None,
    train_fraction: float = 0.3,
) -> list[tuple[int, DefenceComparison]]:
    """Run the CR-vs-Bayes comparison at every seed, in parallel.

    Returns ``(seed, comparison)`` pairs in seed order. Pass an existing
    :class:`~repro.experiments.parallel.ParallelRunner` as *runner* to
    share its result cache and counters.
    """
    from repro.experiments.parallel import ParallelRunner, RunSpec

    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    summaries = runner.run([RunSpec(preset=preset, seed=s) for s in seeds])
    return defences_from_summaries(summaries, train_fraction)


def defences_from_summaries(
    summaries, train_fraction: float = 0.3
) -> list[tuple[int, DefenceComparison]]:
    """The comparison over already-executed runs (shared fan-outs)."""
    return [
        (summary.seed, compare_defences(summary.store, train_fraction))
        for summary in summaries
    ]


def build_sweep_table(results) -> TextTable:
    table = TextTable(
        headers=["seed", "bayes FP", "bayes FN", "CR FP", "CR FN"],
        title=(
            "CR vs naive Bayes across "
            f"{len(results)} independent deployments"
        ),
    )
    for seed, comparison in results:
        table.add_row(
            seed,
            f"{100.0 * comparison.bayes.false_positive_rate:.2f}%",
            f"{100.0 * comparison.bayes.false_negative_rate:.2f}%",
            f"{100.0 * comparison.cr_false_positive_rate:.2f}%",
            f"{100.0 * comparison.cr_false_negative_rate:.4f}%",
        )
    if results:
        n = len(results)
        table.add_row(
            "mean",
            f"{100.0 * sum(c.bayes.false_positive_rate for _, c in results) / n:.2f}%",
            f"{100.0 * sum(c.bayes.false_negative_rate for _, c in results) / n:.2f}%",
            f"{100.0 * sum(c.cr_false_positive_rate for _, c in results) / n:.2f}%",
            f"{100.0 * sum(c.cr_false_negative_rate for _, c in results) / n:.4f}%",
        )
    return table


def render_sweep(results) -> str:
    return build_sweep_table(results).render()
