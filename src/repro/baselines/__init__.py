"""Baseline anti-spam classifiers the CR approach is compared against.

The paper's motivation (§1, §7) anchors on prior findings that CR systems
outperform traditional content filters — Erickson et al. measured "on
average 1 % of false positives with zero false negatives" for CR against a
SpamAssassin-style baseline. This package implements that baseline: a
naive-Bayes content classifier over subject tokens plus header-derived
features, trained and evaluated on the same simulated traffic the CR
product handles, so the two defences can be compared on identical input.
"""

from repro.baselines.naive_bayes import NaiveBayesFilter, TrainingSummary
from repro.baselines.comparison import compare_defences, DefenceComparison

__all__ = [
    "NaiveBayesFilter",
    "TrainingSummary",
    "compare_defences",
    "DefenceComparison",
]
