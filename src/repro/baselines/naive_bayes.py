"""Offline scoring helpers around the naive-Bayes content filter.

The classifier itself (multinomial NB with Laplace smoothing over
subject tokens) lives in :mod:`repro.core.filters.content` since PR 9,
where it doubles as a live chain member; this module keeps the offline
evaluation machinery (confusion counting over logged dispatch records)
and re-exports the classifier for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.records import DispatchRecord
from repro.core.filters.content import (  # noqa: F401  (re-export)
    NaiveBayesFilter,
    TrainingSummary,
    _tokenize,
)
from repro.core.message import MessageKind

__all__ = [
    "NaiveBayesFilter",
    "TrainingSummary",
    "ClassifierScore",
    "score_classifier",
]


@dataclass(frozen=True)
class ClassifierScore:
    """Confusion counts of a binary spam classifier."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def false_positive_rate(self) -> float:
        """Legit messages wrongly flagged (the cost CR systems avoid)."""
        legit = self.false_positives + self.true_negatives
        return self.false_positives / legit if legit else 0.0

    @property
    def false_negative_rate(self) -> float:
        """Spam wrongly admitted."""
        spam = self.true_positives + self.false_negatives
        return self.false_negatives / spam if spam else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 0.0


def score_classifier(
    records: Iterable[DispatchRecord],
    predict,
    limit: Optional[int] = None,
) -> ClassifierScore:
    """Score ``predict(record) -> bool`` against ground-truth labels."""
    tp = fp = tn = fn = 0
    for i, record in enumerate(records):
        if limit is not None and i >= limit:
            break
        is_spam = record.kind is MessageKind.SPAM
        flagged = predict(record)
        if is_spam and flagged:
            tp += 1
        elif is_spam:
            fn += 1
        elif flagged:
            fp += 1
        else:
            tn += 1
    return ClassifierScore(tp, fp, tn, fn)
