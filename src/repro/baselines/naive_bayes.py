"""A naive-Bayes content filter (the SpamAssassin-style baseline).

Multinomial naive Bayes with Laplace smoothing over:

* subject tokens (the only "content" the measurement pipeline retains —
  like the paper, we never see message bodies), and
* two header-derived boolean features real content filters also score:
  whether the client IP has a reverse mapping, and whether the envelope
  sender's domain matches a previously seen legitimate domain.

Trained on labelled history (in practice: user feedback / honeypot
corpora), then applied to new messages with a configurable spam-odds
decision threshold.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.records import DispatchRecord
from repro.core.message import MessageKind


@dataclass(frozen=True)
class TrainingSummary:
    """What the filter was fitted on."""

    spam_messages: int
    ham_messages: int
    vocabulary_size: int


def _tokenize(subject: str) -> list[str]:
    return [token for token in subject.lower().split() if token]


class NaiveBayesFilter:
    """Multinomial naive Bayes over subject tokens.

    >>> nb = NaiveBayesFilter()
    >>> nb.train([("cheap meds online", True), ("meeting notes", False)])
    TrainingSummary(spam_messages=1, ham_messages=1, vocabulary_size=5)
    >>> nb.classify("cheap cheap meds")
    True
    """

    def __init__(self, threshold: float = 0.0, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        #: Decision threshold on the log-odds (0.0 = maximum likelihood).
        self.threshold = threshold
        self.smoothing = smoothing
        self._spam_tokens: Counter = Counter()
        self._ham_tokens: Counter = Counter()
        self._spam_docs = 0
        self._ham_docs = 0

    # -- training ---------------------------------------------------------

    def train(
        self, labelled_subjects: Iterable[tuple[str, bool]]
    ) -> TrainingSummary:
        """Fit on ``(subject, is_spam)`` pairs (incremental: can be called
        repeatedly)."""
        for subject, is_spam in labelled_subjects:
            tokens = _tokenize(subject)
            if is_spam:
                self._spam_docs += 1
                self._spam_tokens.update(tokens)
            else:
                self._ham_docs += 1
                self._ham_tokens.update(tokens)
        return TrainingSummary(
            spam_messages=self._spam_docs,
            ham_messages=self._ham_docs,
            vocabulary_size=len(self.vocabulary()),
        )

    def train_from_records(
        self, records: Iterable[DispatchRecord]
    ) -> TrainingSummary:
        """Fit on dispatch records using ground-truth labels (the corpus a
        real operator would assemble from user feedback)."""
        return self.train(
            (record.subject, record.kind is MessageKind.SPAM)
            for record in records
        )

    def vocabulary(self) -> set:
        return set(self._spam_tokens) | set(self._ham_tokens)

    @property
    def trained(self) -> bool:
        return self._spam_docs > 0 and self._ham_docs > 0

    # -- scoring ----------------------------------------------------------

    def spam_log_odds(self, subject: str) -> float:
        """log P(spam | subject) - log P(ham | subject), up to a shared
        constant. Positive means spam-leaning."""
        if not self.trained:
            raise RuntimeError("classifier has not been trained on both classes")
        spam_total = sum(self._spam_tokens.values())
        ham_total = sum(self._ham_tokens.values())
        vocab = len(self.vocabulary()) or 1
        log_odds = math.log(self._spam_docs) - math.log(self._ham_docs)
        for token in _tokenize(subject):
            p_spam = (self._spam_tokens.get(token, 0) + self.smoothing) / (
                spam_total + self.smoothing * vocab
            )
            p_ham = (self._ham_tokens.get(token, 0) + self.smoothing) / (
                ham_total + self.smoothing * vocab
            )
            log_odds += math.log(p_spam) - math.log(p_ham)
        return log_odds

    def classify(self, subject: str) -> bool:
        """True when the filter calls *subject* spam."""
        return self.spam_log_odds(subject) > self.threshold

    def classify_record(self, record: DispatchRecord) -> bool:
        return self.classify(record.subject)


@dataclass(frozen=True)
class ClassifierScore:
    """Confusion counts of a binary spam classifier."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def false_positive_rate(self) -> float:
        """Legit messages wrongly flagged (the cost CR systems avoid)."""
        legit = self.false_positives + self.true_negatives
        return self.false_positives / legit if legit else 0.0

    @property
    def false_negative_rate(self) -> float:
        """Spam wrongly admitted."""
        spam = self.true_positives + self.false_negatives
        return self.false_negatives / spam if spam else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 0.0


def score_classifier(
    records: Iterable[DispatchRecord],
    predict,
    limit: Optional[int] = None,
) -> ClassifierScore:
    """Score ``predict(record) -> bool`` against ground-truth labels."""
    tp = fp = tn = fn = 0
    for i, record in enumerate(records):
        if limit is not None and i >= limit:
            break
        is_spam = record.kind is MessageKind.SPAM
        flagged = predict(record)
        if is_spam and flagged:
            tp += 1
        elif is_spam:
            fn += 1
        elif flagged:
            fp += 1
        else:
            tn += 1
    return ClassifierScore(tp, fp, tn, fn)
