"""Run one full simulated deployment and collect its measurement logs.

``run_simulation`` is the single entry point used by tests, benchmarks, and
examples: it builds the world, instantiates one
:class:`~repro.core.engine.CompanyInstallation` per company, seeds the
steady-state whitelists/blacklists, arms the blacklist probe monitor and the
trace generator, runs the clock over the observation window (plus a drain
period for in-flight challenge retries), and returns everything the analysis
pipeline needs.
"""

from __future__ import annotations

import os
import resource
import sys
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import SPILL_CHUNK_ROWS, LogStore, SpillConfig
from repro.blacklistd.monitor import BlacklistMonitor
from repro.core.config import FilterChainSpec
from repro.core.engine import CompanyInstallation
from repro.core.ledger import LedgerError, LedgerSnapshot
from repro.core.message import reset_msg_ids
from repro.core.recovery import (
    Checkpointer,
    CheckpointStats,
    RunState,
    load_checkpoint,
)
from repro.net.crashes import CrashPlan, CrashSettings, get_crash_preset
from repro.net.exchange import ShardContext, ShardExchange, ShardMap
from repro.net.faults import FaultPlan, FaultSettings, get_fault_preset
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams
from repro.util.simtime import DAY
from repro.workload.behavior import BehaviorModel
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.entities import World, build_world
from repro.workload.generator import TraceGenerator
from repro.workload.scale import ScaleConfig, get_preset


@dataclass(frozen=True)
class SubstrateCacheStats:
    """Hit/miss counters of the simulated-substrate caches after one run."""

    dns_hits: int
    dns_misses: int
    dnsbl_hits: int
    dnsbl_misses: int
    route_hits: int
    route_misses: int

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def dns_hit_rate(self) -> float:
        return self._rate(self.dns_hits, self.dns_misses)

    @property
    def dnsbl_hit_rate(self) -> float:
        return self._rate(self.dnsbl_hits, self.dnsbl_misses)

    @property
    def route_hit_rate(self) -> float:
        return self._rate(self.route_hits, self.route_misses)

    @classmethod
    def collect(cls, world: World) -> "SubstrateCacheStats":
        services = list(world.services.values())
        return cls(
            dns_hits=world.resolver.cache_hits,
            dns_misses=world.resolver.cache_misses,
            dnsbl_hits=sum(s.cache_hits for s in services),
            dnsbl_misses=sum(s.cache_misses for s in services),
            route_hits=world.internet.route_hits,
            route_misses=world.internet.route_misses,
        )


@dataclass(frozen=True)
class FaultStats:
    """Fault-injection counters plus the delivery-conservation ledger.

    Collected after every run (faults enabled or not): the conservation
    invariant — every message handed to an outbound MTA reached exactly
    one terminal status — is checked unconditionally.
    """

    enabled: bool
    greylist_deferrals: int
    storm_rejections: int
    outage_failures: int
    dns_failures: int
    retries_scheduled: int
    messages_sent: int
    delivered: int
    bounced: int
    expired: int
    #: Messages force-expired by the end-of-run drain (0 when the event
    #: queue emptied on its own, which it does for full-horizon runs).
    drained: int

    @property
    def conserved(self) -> bool:
        """Every sent message reached exactly one terminal status."""
        return self.messages_sent == self.delivered + self.bounced + self.expired

    @classmethod
    def collect(
        cls,
        plan: Optional[FaultPlan],
        installations: dict[str, CompanyInstallation],
    ) -> "FaultStats":
        counters = plan.counters if plan is not None else None
        mtas = _unique_mtas(installations)
        return cls(
            enabled=plan is not None,
            greylist_deferrals=counters.greylist_deferrals if counters else 0,
            storm_rejections=counters.storm_rejections if counters else 0,
            outage_failures=counters.outage_failures if counters else 0,
            dns_failures=counters.dns_failures if counters else 0,
            retries_scheduled=sum(m.retries_scheduled for m in mtas),
            messages_sent=sum(m.sent_messages for m in mtas),
            delivered=sum(m.delivered for m in mtas),
            bounced=sum(m.bounced for m in mtas),
            expired=sum(m.expired for m in mtas),
            drained=sum(m.drained for m in mtas),
        )


@dataclass(frozen=True)
class LedgerStats:
    """End-of-run verdict of the message-lifecycle ledger.

    The inbound mirror of :class:`FaultStats`' delivery conservation:
    every message MTA-IN accepted must sit in exactly one terminal bucket
    (``accepted == delivered + black_dropped + filter_dropped + released
    + deleted + expired + pending_at_horizon``) with nothing left in
    quarantine and no pending-challenge slot outliving its messages.
    Collected — and enforced — after every run; ``audit`` records whether
    the run also validated each transition as it happened.
    """

    audit: bool
    accepted: int
    delivered: int
    black_dropped: int
    filter_dropped: int
    quarantined_total: int
    released: int
    deleted: int
    expired: int
    pending_at_horizon: int
    #: Messages without a terminal status at end-of-run (must be 0).
    stranded: int
    #: Pending-challenge slots still live after the horizon drain — each
    #: one means a sender's next message would skip its challenge.
    leaked_challenge_slots: int
    per_company: tuple[LedgerSnapshot, ...]
    violations: tuple[str, ...]

    @property
    def terminal_total(self) -> int:
        return (
            self.delivered
            + self.black_dropped
            + self.filter_dropped
            + self.released
            + self.deleted
            + self.expired
            + self.pending_at_horizon
        )

    @property
    def conserved(self) -> bool:
        return not self.violations

    @classmethod
    def collect(
        cls, installations: dict[str, CompanyInstallation]
    ) -> "LedgerStats":
        """Snapshot every company's ledger and cross-check it against the
        gray spool's and challenge manager's own counters. Call after
        ``shutdown()`` has drained the spools."""
        snapshots = []
        violations = []
        leaked_slots = 0
        audit = False
        for company_id in sorted(installations):
            inst = installations[company_id]
            snap = inst.ledger.snapshot()
            snapshots.append(snap)
            audit = audit or snap.audit
            if not snap.conserved:
                violations.append(
                    f"{company_id}: {snap.accepted} accepted != "
                    f"{snap.terminal_total} terminal "
                    f"(in quarantine: {snap.in_quarantine}, "
                    f"stranded: {len(snap.stranded)})"
                )
            spool = inst.gray_spool
            spool_view = (
                spool.total_entered,
                spool.total_released,
                spool.total_expired,
                spool.total_deleted,
                spool.total_pending_at_horizon,
                spool.pending_count,
            )
            ledger_view = (
                snap.quarantined_total,
                snap.released,
                snap.expired,
                snap.deleted,
                snap.pending_at_horizon,
                snap.in_quarantine,
            )
            if spool_view != ledger_view:
                violations.append(
                    f"{company_id}: gray spool disagrees with ledger: "
                    f"spool {spool_view} != ledger {ledger_view} "
                    f"(entered/released/expired/deleted/at-horizon/pending)"
                )
            leaked = inst.challenge_manager.pending_count
            if leaked:
                leaked_slots += leaked
                slots = inst.challenge_manager.pending_items()[:5]
                violations.append(
                    f"{company_id}: {leaked} pending-challenge slot(s) "
                    f"outlived their quarantined messages: {slots}"
                )
        totals = {
            field: sum(getattr(s, field) for s in snapshots)
            for field in (
                "accepted",
                "delivered",
                "black_dropped",
                "filter_dropped",
                "quarantined_total",
                "released",
                "deleted",
                "expired",
                "pending_at_horizon",
            )
        }
        return cls(
            audit=audit,
            stranded=sum(len(s.stranded) for s in snapshots),
            leaked_challenge_slots=leaked_slots,
            per_company=tuple(snapshots),
            violations=tuple(violations),
            **totals,
        )


@dataclass(frozen=True)
class CrashStats:
    """Crash-injection counters plus the recovery verdict.

    ``journal_mismatches`` must stay 0 under the ``journaled`` durability
    model — a rebuilt index that disagrees with pre-crash state is a
    recovery bug, not bad weather. ``lost`` is nonzero only under the
    deliberately broken ``lossy`` model (where the lifecycle ledger is
    expected to blow up)."""

    enabled: bool
    crashes: int
    by_component: tuple
    inbound_deferred: int
    inbound_refused: int
    digests_skipped: int
    expiries_skipped: int
    outbound_deferred: int
    redriven: int
    lost: int
    journals_rebuilt: int
    journal_mismatches: int

    @property
    def clean_recovery(self) -> bool:
        """No message lost, every journal rebuilt consistently."""
        return self.lost == 0 and self.journal_mismatches == 0

    @classmethod
    def collect(cls, plan: Optional[CrashPlan]) -> "CrashStats":
        if plan is None:
            return cls(
                enabled=False, crashes=0, by_component=(),
                inbound_deferred=0, inbound_refused=0, digests_skipped=0,
                expiries_skipped=0, outbound_deferred=0, redriven=0,
                lost=0, journals_rebuilt=0, journal_mismatches=0,
            )
        c = plan.counters
        return cls(
            enabled=True,
            crashes=c.crashes,
            by_component=tuple(sorted(c.by_component.items())),
            inbound_deferred=c.inbound_deferred,
            inbound_refused=c.inbound_refused,
            digests_skipped=c.digests_skipped,
            expiries_skipped=c.expiries_skipped,
            outbound_deferred=c.outbound_deferred,
            redriven=c.redriven,
            lost=c.lost,
            journals_rebuilt=c.journals_rebuilt,
            journal_mismatches=c.journal_mismatches,
        )


@dataclass(frozen=True)
class MemoryStats:
    """Peak-memory accounting for one run (or one shard of a run).

    ``max_rss_bytes`` is the process high-water mark — with spill enabled
    it should stay roughly flat as the horizon grows, which is the whole
    point of the streaming store. The ``store_*`` fields split the
    measurement database between its bounded in-memory tails and what
    already went to disk.
    """

    max_rss_bytes: int
    store_live_rows: int
    store_live_bytes: int
    store_spilled_bytes: int

    @classmethod
    def collect(cls, store: LogStore) -> "MemoryStats":
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        if sys.platform != "darwin":
            rss *= 1024
        return cls(
            max_rss_bytes=rss,
            store_live_rows=store.live_rows(),
            store_live_bytes=store.live_bytes_estimate(),
            store_spilled_bytes=store.spilled_bytes(),
        )


@dataclass(frozen=True)
class ShardRunInfo:
    """One shard's exchange-side residue, for the driver's reconciler."""

    index: int
    n_shards: int
    #: ``(owner shard, epoch day) -> (row count, stream digest)``.
    manifests: dict
    local_rows: int
    remote_rows: int


def _unique_mtas(installations: dict[str, CompanyInstallation]) -> list:
    """Each installation's outbound MTAs, deduplicated — non-dual
    installations share one object between user and challenge mail."""
    mtas: dict[int, object] = {}
    for installation in installations.values():
        for mta in (installation.user_mta, installation.challenge_mta):
            mtas[id(mta)] = mta
    return list(mtas.values())


@dataclass
class SimulationResult:
    """Everything one run produced."""

    store: LogStore
    world: World
    simulator: Simulator
    installations: dict[str, CompanyInstallation]
    monitor: BlacklistMonitor
    info: DeploymentInfo
    seed: int
    wall_seconds: float
    cache_stats: SubstrateCacheStats
    fault_stats: Optional[FaultStats] = None
    ledger_stats: Optional[LedgerStats] = None
    crash_stats: Optional[CrashStats] = None
    checkpoint_stats: Optional[CheckpointStats] = None
    memory_stats: Optional[MemoryStats] = None
    #: Engine event count (mirrors ``simulator.events_processed``; summed
    #: across workers for sharded runs, where ``simulator`` is ``None``).
    events_processed: int = 0
    #: Per-shard :class:`ShardRunInfo` for a shard worker, an aggregate
    #: :class:`repro.experiments.sharded.ShardStats` for a merged sharded
    #: result, ``None`` for plain runs.
    shard_stats: object = None
    #: The resolved :class:`repro.scenarios.ScenarioSpec` this run
    #: executed, ``None`` for scenario-free runs. The ``verdicts``
    #: experiment evaluates its checks against the store.
    scenario: object = None


def run_simulation(
    preset: Union[str, ScaleConfig] = "tiny",
    seed: int = 7,
    calibration: Optional[Calibration] = None,
    filters_template=None,
    scenarios: Sequence = (),
    config_overrides: Optional[dict] = None,
    faults: Union[str, FaultSettings, None] = None,
    audit: bool = False,
    crashes: Union[str, CrashSettings, None] = None,
    checkpoint_every: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    batch_delivery: bool = True,
    shards: Optional[int] = None,
    shard_jobs: Optional[int] = None,
    spill_dir: Optional[str] = None,
    spill_chunk_rows: Optional[int] = None,
    shard_of: Optional[tuple] = None,
    scenario=None,
    chain=None,
) -> SimulationResult:
    """Simulate one deployment at the given scale preset and seed.

    *filters_template* (a :class:`repro.core.config.FilterSettings`)
    overrides every company's auxiliary-filter configuration; ablation
    studies use it to switch individual filters on or off fleet-wide.

    *scenarios* are extra traffic sources — typically
    :class:`repro.workload.attacks.AttackScenario` instances — installed
    alongside the regular trace generator.

    *scenario* names a declarative scenario from the YAML pack (or
    passes a resolved :class:`repro.scenarios.ScenarioSpec` directly):
    its attacks are built and installed, and its fault/crash/filter
    settings apply wherever the corresponding explicit argument was left
    at its default (explicit arguments win). The resolved spec rides on
    ``SimulationResult.scenario`` for the ``verdicts`` experiment.

    *faults* enables network-weather injection: a fault preset name
    (``"mild"``, ``"stormy"`` — see
    :data:`~repro.net.faults.FAULT_PRESETS`), an explicit
    :class:`~repro.net.faults.FaultSettings`, or ``None``/``"off"``
    (default) for the perfectly reliable substrate.

    *audit* turns on the continuous lifecycle auditor (per-message state
    tracking + transition validation in :mod:`repro.core.ledger`);
    ``REPRO_AUDIT=1`` in the environment does the same. The end-of-run
    conservation verdict is checked regardless — a violated partition
    raises :class:`~repro.core.ledger.LedgerError` even with audit off.

    *crashes* enables crash-fault injection inside the product itself: a
    crash preset name (``"rare"``, ``"flaky"`` — see
    :data:`~repro.net.crashes.CRASH_PRESETS`), an explicit
    :class:`~repro.net.crashes.CrashSettings`, or ``None``/``"off"``
    (default).

    *checkpoint_every* (sim-seconds) arms periodic whole-state snapshots
    into *checkpoint_dir*; *resume_from* restores such a snapshot and
    continues the run instead of building a fresh one (every other
    build-time parameter is then taken from the snapshot). A resumed run
    produces a byte-identical measurement store to the uninterrupted one.

    *batch_delivery=False* schedules each generated message as its own
    heap entry instead of one EventBatch per day — same draws, same
    sort, same ids, so the measurement store must be bit-identical; the
    engine-batching property tests pin exactly that.

    *shards* > 1 partitions the companies across that many worker
    processes (DESIGN.md §12) and returns the deterministically merged
    result — same store digest as ``shards=1``. *shard_jobs* bounds the
    worker processes (default: one per shard; ``1`` runs the shards
    sequentially in-process). *spill_dir* bounds the store's resident
    memory by spilling full chunks of *spill_chunk_rows* records to
    columnar files under that directory. *shard_of* ``(index, n_shards)``
    is internal: it marks this invocation as one shard's worker.

    *chain* selects the auxiliary filter-chain composition: a
    :class:`~repro.core.config.FilterChainSpec`, a preset name
    (``"hybrid"``), a comma list of members (``"antivirus,content"``),
    or ``None`` (default) for the legacy :class:`FilterSettings`-gated
    product chain — which is byte-identical to pre-spec behaviour. A
    scenario's declared chain applies only when this argument is
    ``None``.
    """
    chain = FilterChainSpec.parse(chain)
    if shard_of is None and shards is not None and shards > 1:
        from repro.experiments.sharded import run_sharded_simulation

        return run_sharded_simulation(
            preset,
            seed=seed,
            calibration=calibration,
            filters_template=filters_template,
            scenarios=scenarios,
            config_overrides=config_overrides,
            faults=faults,
            audit=audit,
            crashes=crashes,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
            batch_delivery=batch_delivery,
            shards=shards,
            jobs=shard_jobs,
            spill_dir=spill_dir,
            spill_chunk_rows=spill_chunk_rows,
            scenario=scenario,
            chain=chain,
        )

    started = time.perf_counter()
    if resume_from is not None:
        restore_started = time.perf_counter()
        state = load_checkpoint(resume_from)
        restore_seconds = time.perf_counter() - restore_started
        if checkpoint_every is not None and state.checkpointer is None:
            directory = checkpoint_dir or os.path.dirname(resume_from)
            checkpointer = Checkpointer(state, directory, checkpoint_every)
            checkpointer.arm()
        return _finish_run(
            state, started,
            restored_from=resume_from, restore_seconds=restore_seconds,
        )

    audit = audit or os.environ.get("REPRO_AUDIT", "") not in ("", "0")
    scale = get_preset(preset) if isinstance(preset, str) else preset
    calibration = calibration or DEFAULT_CALIBRATION
    scenario_spec = None
    scenarios = list(scenarios)
    if scenario is not None:
        from repro.scenarios import resolve_scenario

        scenario_spec = resolve_scenario(scenario)
        # Scenario-declared weather and filters apply only where the
        # caller left the explicit argument at its default.
        if faults is None:
            faults = scenario_spec.faults
        if crashes is None:
            crashes = scenario_spec.crashes
        if filters_template is None:
            filters_template = scenario_spec.filters_template()
        if chain is None:
            chain = scenario_spec.chain_spec()
        scenarios.extend(scenario_spec.build_attacks())
    fault_settings = get_fault_preset(faults) if isinstance(faults, str) else faults
    crash_settings = get_crash_preset(crashes) if isinstance(crashes, str) else crashes
    reset_msg_ids()

    streams = RngStreams(seed)
    world = build_world(
        scale, calibration, streams, filters_template, config_overrides
    )
    simulator = Simulator()
    spill = None
    if spill_dir is not None:
        spill = SpillConfig(
            directory=spill_dir,
            chunk_rows=spill_chunk_rows or SPILL_CHUNK_ROWS,
        )
    store = LogStore(spill=spill)
    behavior = BehaviorModel(world, calibration, streams)
    hooks = behavior.hooks()
    shard_ctx = None
    if shard_of is not None:
        index, n_shards = shard_of
        shard_map = ShardMap.from_world(world, n_shards)
        shard_ctx = ShardContext(
            shard_map=shard_map,
            index=index,
            exchange=ShardExchange(n_shards=n_shards, shard_index=index),
        )

    horizon = scale.n_days * DAY
    fault_plan = None
    if fault_settings is not None and fault_settings.enabled:
        fault_plan = FaultPlan(
            fault_settings, seed=seed, horizon=horizon, clock=simulator
        )
        world.install_fault_plan(fault_plan)
    installations: dict[str, CompanyInstallation] = {}
    for company in world.companies:
        # A shard worker instantiates only its own companies; remote
        # companies' draws all come from per-company or replicated
        # streams, so skipping their setup consumes nothing shared.
        if (
            shard_ctx is not None
            and shard_ctx.shard_map.owner_of(company.company_id)
            != shard_ctx.index
        ):
            continue
        installation = CompanyInstallation(
            config=company.config,
            simulator=simulator,
            internet=world.internet,
            resolver=world.resolver,
            store=store,
            dnsbl_services=world.services,
            rng=streams.stream(f"antivirus/{company.company_id}"),
            hooks=hooks,
            challenge_size=calibration.challenge_size,
            audit=audit,
            chain=chain,
        )
        _seed_user_lists(installation, company, calibration)
        installation.start(until=horizon)
        installations[company.company_id] = installation
    _seed_newsletter_whitelists(installations, world, calibration, streams)

    server_ips = sorted(
        {inst.challenge_mta.ip for inst in installations.values()}
        | {inst.user_mta.ip for inst in installations.values()}
    )
    monitor = BlacklistMonitor(
        simulator,
        list(world.services.values()),
        server_ips,
        sink=store.add_probe,
    )
    monitor.start(until=horizon)

    generator = TraceGenerator(
        world, simulator, installations, streams,
        batch_delivery=batch_delivery, shard=shard_ctx,
    )
    generator.start(scale.n_days)
    for attack in scenarios:
        attack.install(
            world, simulator, installations, streams,
            shard=shard_ctx, behavior=behavior,
        )

    crash_plan = None
    if crash_settings is not None and crash_settings.enabled:
        crash_plan = CrashPlan(crash_settings, seed=seed, horizon=horizon)
        crash_plan.arm(simulator, installations, store)

    state = RunState(
        scale=scale,
        seed=seed,
        audit=audit,
        horizon=horizon,
        simulator=simulator,
        store=store,
        world=world,
        installations=installations,
        monitor=monitor,
        generator=generator,
        behavior=behavior,
        fault_plan=fault_plan,
        crash_plan=crash_plan,
        scenario=scenario_spec,
    )
    if checkpoint_every is not None:
        if checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every requires checkpoint_dir (where to put "
                "the snapshots)"
            )
        Checkpointer(state, checkpoint_dir, checkpoint_every).arm()
    return _finish_run(state, started)


def _finish_run(
    state: RunState,
    started: float,
    restored_from: Optional[str] = None,
    restore_seconds: float = 0.0,
) -> SimulationResult:
    """Run (or keep running) the clock over the observation window, drain,
    enforce conservation, and package the result. Shared by fresh and
    resumed runs so both finish byte-identically."""
    simulator = state.simulator
    installations = state.installations
    world = state.world
    scale = state.scale

    # Run the observation window, then drain in-flight work (challenge
    # retries, scheduled solves, digest actions) — recurring jobs stop at
    # the horizon, so the queue empties on its own.
    simulator.run(until=state.horizon)
    simulator.run()
    # Safety net for the end-of-horizon leak: force any message still
    # lacking a terminal status to EXPIRED. After the full drain above
    # this finalizes nothing — it exists so the conservation invariant
    # holds even for truncated runs.
    for mta in _unique_mtas(installations):
        mta.drain()
    # Inbound teardown: entries still quarantined at the horizon get their
    # PENDING_AT_HORIZON terminal status and their challenge slots are
    # retired; then the lifecycle verdict is enforced unconditionally.
    for installation in installations.values():
        installation.shutdown()
    ledger_stats = LedgerStats.collect(installations)
    if not ledger_stats.conserved:
        raise LedgerError(
            "message-lifecycle conservation violated:\n  "
            + "\n  ".join(ledger_stats.violations)
        )

    info = DeploymentInfo(
        n_companies=scale.n_companies,
        n_open_relays=scale.open_relays,
        users_per_company={
            company.company_id: company.n_users for company in world.companies
        },
        horizon_days=float(scale.n_days),
        min_cluster_size=scale.min_cluster_size,
        volume_scale=scale.volume_scale,
    )
    if state.checkpointer is not None:
        # Join any in-flight background snapshot writer: every snapshot
        # is complete on disk before the run's results are visible.
        state.checkpointer.finalize()
        checkpoint_stats = state.checkpointer.stats(
            restored_from=restored_from, restore_seconds=restore_seconds
        )
    else:
        checkpoint_stats = CheckpointStats(
            restored_from=restored_from, restore_seconds=restore_seconds
        )
    shard_ctx = getattr(state.generator, "shard", None)
    shard_stats = None
    if shard_ctx is not None:
        exchange = shard_ctx.exchange
        shard_stats = ShardRunInfo(
            index=shard_ctx.index,
            n_shards=shard_ctx.n_shards,
            manifests=dict(exchange.manifests),
            local_rows=exchange.local_rows,
            remote_rows=exchange.remote_rows,
        )
    return SimulationResult(
        store=state.store,
        world=world,
        simulator=simulator,
        installations=installations,
        monitor=state.monitor,
        info=info,
        seed=state.seed,
        wall_seconds=time.perf_counter() - started,
        cache_stats=SubstrateCacheStats.collect(world),
        fault_stats=FaultStats.collect(state.fault_plan, installations),
        ledger_stats=ledger_stats,
        crash_stats=CrashStats.collect(state.crash_plan),
        checkpoint_stats=checkpoint_stats,
        memory_stats=MemoryStats.collect(state.store),
        events_processed=simulator.events_processed,
        shard_stats=shard_stats,
        # getattr: snapshots written before the field existed restore
        # without it.
        scenario=getattr(state, "scenario", None),
    )


def _seed_user_lists(
    installation: CompanyInstallation, company, calibration: Calibration
) -> None:
    """Pre-populate steady-state whitelists (most contacts) and blacklists
    (nuisance senders) — the paper observes mature installations."""
    for user in company.users:
        n_seed = int(len(user.contacts) * calibration.seed_whitelist_share)
        installation.seed_whitelist(user.address, user.contacts[:n_seed])
        installation.seed_blacklist(user.address, user.nuisance_senders)


def _seed_newsletter_whitelists(installations, world, calibration, streams) -> None:
    """Most subscriptions predate the monitoring window, so most
    subscribers already whitelisted their newsletters' sender addresses."""
    rng = streams.stream("newsletter-seed")
    for source in world.newsletter_sources:
        for company_id, subscriber in source.subscribers:
            if rng.random() < calibration.newsletter_seed_prob:
                # .get, not []: a shard worker seeds only its own
                # companies, but the draw above already happened — every
                # shard consumes the identical stream.
                installation = installations.get(company_id)
                if installation is not None:
                    installation.seed_whitelist(
                        subscriber, list(source.senders)
                    )
