"""Parallel multi-run execution with deterministic result merging.

Every multi-run study in this repo — the Fig. 5 variability sweep, the
filter ablations, the baseline comparison — re-simulates the deployment
across seeds and configurations, and each run is independent of the
others. This module fans those runs out across worker processes and
merges the results back **in spec order**, so callers see exactly the
list they would have produced serially:

    specs = [RunSpec("tiny", seed=s) for s in (3, 5, 7, 11)]
    summaries = run_specs(specs, jobs=4)

Three design points worth knowing:

* **The pickling boundary.** :class:`~repro.experiments.runner.SimulationResult`
  holds live objects — the :class:`~repro.sim.engine.Simulator` with its
  scheduled closures, the installations, the monitor — none of which can
  cross a process boundary. Workers therefore ship back a
  :class:`RunSummary`: the :class:`~repro.analysis.store.LogStore` record
  lists plus :class:`~repro.analysis.context.DeploymentInfo`, the static
  per-company configs, the seed, the wall time, and a content digest of
  the records. Everything the analysis layer consumes is in there; the
  live simulation machinery stays in the worker and dies with it.

* **Serial bypass.** ``jobs=1`` never touches ``multiprocessing`` at all:
  specs execute inline, in order, in the calling process — bit-for-bit
  the behaviour of calling :func:`run_simulation` in a loop. The worker
  pool (preferring the ``fork`` start method so children share the
  parent's hash seed) is only spun up for two or more uncached specs.

* **The result cache.** Each spec hashes to a key covering the resolved
  scale config, seed, calibration, filter template, config overrides,
  declarative scenario, and the package version; summaries are pickled
  under ``.cache/runs/<key>.pkl``
  (override with ``$REPRO_CACHE_DIR``). Re-running a benchmark or ablation
  sweep with an unchanged spec set performs zero simulations. The runner
  counts ``cache_hits`` and ``runs_executed`` so tests can assert exactly
  that.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import tempfile
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro._version import __version__
from repro.analysis.context import DeploymentInfo
from repro.analysis.persistence import encoded_records
from repro.analysis.store import TABLES, LogStore
from repro.core.config import CompanyConfig, FilterChainSpec, FilterSettings
from repro.core.recovery import latest_checkpoint
from repro.experiments.runner import SimulationResult, run_simulation
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.scale import ScaleConfig, get_preset

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".cache/runs"

#: Default root for per-spec checkpoint directories (failed shards of a
#: sweep resume from here instead of restarting from day 0).
DEFAULT_CHECKPOINT_ROOT = ".cache/checkpoints"


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation job: everything ``run_simulation`` needs.

    Attack scenarios ride along declaratively: ``scenario`` names a pack
    entry (or holds a resolved, hashable
    :class:`~repro.scenarios.ScenarioSpec`), so scenario sweeps cache
    and parallelise like every other spec. Raw ``scenarios`` *instances*
    (arbitrary live objects) still have no place here — express the
    attack as a spec instead.
    """

    preset: Union[str, ScaleConfig] = "tiny"
    seed: int = 7
    calibration: Optional[Calibration] = None
    filters_template: Optional[FilterSettings] = None
    config_overrides: Optional[dict] = None
    #: Fault-injection preset name (``None`` = reliable substrate). A name
    #: rather than a :class:`FaultSettings` keeps specs trivially
    #: picklable and the cache key readable.
    faults: Optional[str] = None
    #: Run with the continuous lifecycle auditor on. Part of the cache key
    #: even though audited output is byte-identical: a cached unaudited
    #: summary must never satisfy a request to actually *audit* the run.
    audit: bool = False
    #: Crash-injection preset name (``None`` = no component crashes); a
    #: name for the same reasons as ``faults``.
    crashes: Optional[str] = None
    #: Snapshot interval in sim-seconds (``None`` = no checkpointing).
    #: Part of the cache key even though checkpointed output is
    #: byte-identical: a request to write snapshots must actually execute
    #: and write them, not be satisfied from the cache.
    checkpoint_every: Optional[float] = None
    #: Intra-run company shards (``None`` = the plain single-process
    #: engine). Cached summaries are digest-identical either way, but a
    #: request to exercise the sharded data plane must actually run it.
    shards: Optional[int] = None
    #: Run with the streaming spill store (a per-spec temporary
    #: directory). Output is digest-identical to in-memory; in the cache
    #: key for the same reason as ``audit``.
    spill: bool = False
    #: Declarative attack scenario: a pack name or a resolved
    #: :class:`~repro.scenarios.ScenarioSpec` (``None`` = no scenario).
    #: Folded into the cache key as the *resolved* spec, so editing a
    #: scenario's YAML invalidates its cached runs.
    scenario: object = None
    #: Filter-chain composition: a preset name, comma list, or resolved
    #: :class:`~repro.core.config.FilterChainSpec` (``None`` = the legacy
    #: product chain). Folded into the cache key as the resolved spec.
    chain: object = None
    #: Free-form display name (not part of the cache key).
    label: str = ""

    def resolved_scale(self) -> ScaleConfig:
        return (
            get_preset(self.preset)
            if isinstance(self.preset, str)
            else self.preset
        )

    def cache_key(self) -> str:
        """Content hash of the spec, tied to the package version.

        Built from dataclass ``repr``s, which are deterministic for the
        frozen config types involved; overrides are sorted so dict
        insertion order never changes the key.
        """
        overrides = sorted((self.config_overrides or {}).items())
        canonical_fields: tuple = (
            __version__,
            self.resolved_scale(),
            self.seed,
            self.calibration or DEFAULT_CALIBRATION,
            self.filters_template,
            overrides,
            self.faults,
            self.audit,
            self.crashes,
            self.checkpoint_every,
        )
        # Default-folding for fields added after entries were cached: a
        # spec that leaves them at their defaults hashes exactly as it
        # did before the fields existed, so old cache entries stay valid.
        if self.shards is not None:
            canonical_fields += (("shards", self.shards),)
        if self.spill:
            canonical_fields += (("spill", True),)
        if self.scenario is not None:
            from repro.scenarios import resolve_scenario

            canonical_fields += (
                ("scenario", resolve_scenario(self.scenario)),
            )
        if self.chain is not None:
            canonical_fields += (
                ("chain", FilterChainSpec.parse(self.chain)),
            )
        canonical = repr(canonical_fields)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunSummary:
    """The picklable cross-process residue of one simulation run.

    Carries the full measurement database (:class:`LogStore` — record
    lists only, indices dropped) plus the static facts analyses and
    ablation reports need. Live objects (simulator, installations,
    world) never leave the worker.
    """

    store: LogStore
    info: DeploymentInfo
    #: Static per-company configuration (company_id -> config); stands in
    #: for ``SimulationResult.installations`` in config-level analyses
    #: such as the dual-MTA ablation.
    company_configs: dict[str, CompanyConfig] = field(default_factory=dict)
    seed: int = 0
    wall_seconds: float = 0.0
    #: SHA-256 over the canonical JSON encoding of every record, in codec
    #: order — two runs with equal digests produced identical logs.
    digest: str = ""
    #: The run's resolved :class:`~repro.scenarios.ScenarioSpec`
    #: (``None`` for scenario-free runs); read with ``getattr`` — cache
    #: entries pickled before the field existed restore without it.
    scenario: object = None
    #: Traceback text when the spec ultimately failed (after its retry);
    #: ``None`` for a successful run. A failed summary carries an empty
    #: store and is never written to the cache.
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def store_digest(store: LogStore) -> str:
    """Content fingerprint of a measurement database.

    Hashes the same JSON payloads :func:`repro.analysis.persistence.save_run`
    would write, so the digest is stable across processes, platforms, and
    hash-seed randomisation.
    """
    digest = hashlib.sha256()
    for tag, payload in encoded_records(store):
        digest.update(tag.encode("utf-8"))
        digest.update(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def summarize_result(result: SimulationResult) -> RunSummary:
    """Boil a live :class:`SimulationResult` down to its picklable summary."""
    result.store.drop_indices()
    return RunSummary(
        store=result.store,
        info=result.info,
        company_configs={
            company_id: installation.config
            for company_id, installation in result.installations.items()
        },
        seed=result.seed,
        wall_seconds=result.wall_seconds,
        digest=store_digest(result.store),
        scenario=getattr(result, "scenario", None),
    )


def _spec_checkpoint_dir(spec: RunSpec, checkpoint_root) -> Optional[str]:
    """Per-spec snapshot directory (content-addressed, collision-free)."""
    if spec.checkpoint_every is None:
        return None
    root = checkpoint_root or os.environ.get(
        "REPRO_CHECKPOINT_ROOT", DEFAULT_CHECKPOINT_ROOT
    )
    return str(Path(root) / f"spec-{spec.cache_key()[:16]}")


def _execute_spec(
    spec: RunSpec,
    checkpoint_root: Union[str, Path, None] = None,
    resume: bool = False,
) -> RunSummary:
    """Worker entry point: one full simulation, summarised. Module-level
    so the process pool can pickle it.

    With *resume* set, a checkpointing spec first looks for its newest
    snapshot under its per-spec directory and continues from there — this
    is how a retried shard avoids redoing the part that already ran.
    """
    directory = _spec_checkpoint_dir(spec, checkpoint_root)
    if resume and directory is not None:
        snapshot = latest_checkpoint(directory)
        if snapshot is not None:
            return summarize_result(run_simulation(resume_from=snapshot))
    spill_dir = tempfile.mkdtemp(prefix="repro-spill-") if spec.spill else None
    try:
        result = run_simulation(
            spec.preset,
            seed=spec.seed,
            calibration=spec.calibration,
            filters_template=spec.filters_template,
            config_overrides=spec.config_overrides,
            faults=spec.faults,
            audit=spec.audit,
            crashes=spec.crashes,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_dir=directory,
            shards=spec.shards,
            shard_jobs=1 if spec.shards else None,
            spill_dir=spill_dir,
            scenario=spec.scenario,
            chain=spec.chain,
        )
        if spill_dir is not None:
            # The spill directory dies with this call, so pull every
            # table back into memory before the chunk files disappear.
            store = result.store
            for table in TABLES:
                rows = getattr(store, table)
                if not isinstance(rows, list):
                    setattr(store, table, list(rows))
    finally:
        if spill_dir is not None:
            import shutil

            shutil.rmtree(spill_dir, ignore_errors=True)
    return summarize_result(result)


class RunCache:
    """Pickle-per-key result cache under a directory.

    Corrupt or unreadable entries are treated as misses — a half-written
    file from an interrupted run never poisons later sweeps.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(
            root or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str) -> Optional[RunSummary]:
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                summary = pickle.load(handle)
        except FileNotFoundError:
            return None  # plain miss: nothing was ever cached here
        except Exception as exc:
            # The unpickler raises a different exception type for nearly
            # every flavour of truncation/garbage (UnpicklingError,
            # EOFError, ValueError, KeyError, ...); any unreadable entry
            # is a miss, but an *existing* unreadable entry means the
            # cache was corrupted (killed writer, disk trouble) — say so
            # before silently recomputing.
            warnings.warn(
                f"corrupt run-cache entry {path}: "
                f"{type(exc).__name__}: {exc}; recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if not isinstance(summary, RunSummary):
            warnings.warn(
                f"run-cache entry {path} holds {type(summary).__name__}, "
                "not a RunSummary; recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return summary

    def save(self, key: str, summary: RunSummary) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent workers/readers never observe a
        # partial pickle.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(summary, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def _pool_context():
    """Prefer ``fork`` so workers inherit the parent's hash seed; fall back
    to the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class ParallelRunner:
    """Executes batches of :class:`RunSpec` and merges results in spec order.

    ``jobs=1`` (the default) runs everything inline — no pool, no pickling
    of specs, identical to a serial loop. ``cache=None`` disables the
    on-disk result cache entirely.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[RunCache] = None,
        checkpoint_root: Union[str, Path, None] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.checkpoint_root = checkpoint_root
        #: Specs answered from the on-disk cache, lifetime total.
        self.cache_hits = 0
        #: Specs actually simulated, lifetime total.
        self.runs_executed = 0
        #: Specs that failed even after their retry, lifetime total.
        self.failures = 0

    def run(self, specs: Sequence[RunSpec]) -> list[RunSummary]:
        """Execute every spec, returning summaries in spec order.

        Completion order never matters: parallel results are matched back
        to their originating index, so ``run(specs)[i]`` always belongs to
        ``specs[i]``.

        A spec whose worker raises is retried once, serially, in the
        calling process — checkpointing specs resume from their newest
        snapshot rather than restarting at day 0. If the retry also
        raises, its slot holds a failed :class:`RunSummary` (empty store,
        ``error`` carrying the traceback); the survivors are merged
        exactly as if the failed spec had never been requested, and
        failed summaries are never written to the cache.
        """
        specs = list(specs)
        results: list[Optional[RunSummary]] = [None] * len(specs)

        pending: list[tuple[int, RunSpec]] = []
        for index, spec in enumerate(specs):
            cached = (
                self.cache.load(spec.cache_key()) if self.cache else None
            )
            if cached is not None:
                results[index] = cached
                self.cache_hits += 1
            else:
                pending.append((index, spec))

        failed: list[tuple[int, RunSpec]] = []
        completed: list[tuple[int, RunSummary]] = []
        if pending:
            if self.jobs == 1 or len(pending) == 1:
                for index, spec in pending:
                    try:
                        completed.append(
                            (index, _execute_spec(spec, self.checkpoint_root))
                        )
                    except Exception:
                        failed.append((index, spec))
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=_pool_context()
                ) as pool:
                    futures = [
                        (
                            index,
                            spec,
                            pool.submit(
                                _execute_spec, spec, self.checkpoint_root
                            ),
                        )
                        for index, spec in pending
                    ]
                    for index, spec, future in futures:
                        try:
                            completed.append((index, future.result()))
                        except Exception:
                            failed.append((index, spec))

        # One retry per failed spec, serially in the parent so the failure
        # (and any second traceback) is attributable; resume=True lets a
        # checkpointing spec continue from its last snapshot.
        for index, spec in failed:
            try:
                completed.append(
                    (index, _execute_spec(spec, self.checkpoint_root, resume=True))
                )
            except Exception:
                self.failures += 1
                results[index] = RunSummary(
                    store=LogStore(),
                    info=DeploymentInfo(
                        n_companies=0,
                        n_open_relays=0,
                        users_per_company={},
                        horizon_days=0.0,
                        min_cluster_size=1,
                    ),
                    seed=spec.seed,
                    error=traceback.format_exc(),
                )

        for index, summary in completed:
            results[index] = summary
            self.runs_executed += 1
            if self.cache:
                self.cache.save(specs[index].cache_key(), summary)

        return results  # type: ignore[return-value]  # every slot is filled


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Union[str, Path, None] = None,
    checkpoint_root: Union[str, Path, None] = None,
) -> list[RunSummary]:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    cache = RunCache(cache_dir) if use_cache else None
    return ParallelRunner(
        jobs=jobs, cache=cache, checkpoint_root=checkpoint_root
    ).run(specs)
