"""Intra-run company sharding: N workers, one deployment, one answer.

One simulated deployment is embarrassingly parallel *between* runs (see
:mod:`repro.experiments.parallel`) but was serial *within* a run. This
module splits a single run's 47 companies across N worker processes —
each worker replays the identical replicated world and trace draws but
materialises and simulates only the companies it owns (DESIGN.md §12) —
then deterministically merges the per-shard measurement stores back into
the exact record order the whole-world run would have logged.

The correctness gates are mechanical, not statistical:

* the cross-shard SMTP exchange (:mod:`repro.net.exchange`) hashes every
  shard's view of the full ``(time, msg_id)`` mail stream per epoch; the
  driver refuses to merge unless all N views agree;
* each worker enforces its own message-lifecycle conservation ledger,
  and the driver additionally sums the snapshots into one aggregate
  verdict;
* the merged store must reproduce ``shards=1`` byte-for-byte —
  ``store_digest(shards=N) == store_digest(shards=1)`` is pinned by
  tests across seeds and fault weather.

Merging relies on every table being time-nondecreasing within a shard
(records are appended at event execution time) and on company-keyed sort
keys reproducing the single-run interleaving: recurring per-company
events (digests, expiry sweeps) fire in ``world.companies`` order in an
unsharded run, which is exactly the ``company_index`` tiebreak; message
arrival times are draws from continuous distributions, so cross-company
ties at equal float times have measure zero.
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.analysis.context import DeploymentInfo
from repro.analysis.store import LogStore, MergedTable, TABLES
from repro.core.config import CompanyConfig
from repro.core.ledger import LedgerError
from repro.core.recovery import CheckpointError, CheckpointStats, latest_checkpoint
from repro.experiments.runner import (
    CrashStats,
    FaultStats,
    LedgerStats,
    MemoryStats,
    ShardRunInfo,
    SimulationResult,
    SubstrateCacheStats,
    run_simulation,
)
from repro.net.exchange import reconcile
from repro.net.faults import FaultSettings
from repro.net.crashes import CrashSettings
from repro.workload.calibration import Calibration
from repro.workload.scale import ScaleConfig


@dataclass(frozen=True)
class ShardedInstallationView:
    """Config-only stand-in for a live :class:`CompanyInstallation`.

    The live installations die with their workers; merged results keep
    the static per-company configuration so config-level consumers
    (``summarize_result``, the ablation reports) work unchanged.
    """

    config: CompanyConfig


@dataclass(frozen=True)
class ShardPerf:
    """One shard's cost accounting."""

    index: int
    companies: int
    wall_seconds: float
    events_processed: int
    local_rows: int
    remote_rows: int
    max_rss_bytes: int


@dataclass(frozen=True)
class ShardStats:
    """Aggregate verdict of one sharded run."""

    n_shards: int
    jobs: int
    #: company_id -> owning shard index.
    owners: dict
    #: Reconciled exchange manifest: ``(owner, epoch day) -> (count, digest)``.
    manifests: dict
    per_shard: tuple

    @property
    def exchange_rows(self) -> int:
        return sum(count for count, _digest in self.manifests.values())

    @property
    def cross_shard_rows(self) -> int:
        """Rows that crossed a shard boundary (anyone's remote traffic)."""
        return sum(p.remote_rows for p in self.per_shard) // max(
            1, self.n_shards - 1
        ) if self.n_shards > 1 else 0

    @property
    def max_shard_wall_seconds(self) -> float:
        return max(p.wall_seconds for p in self.per_shard)


@dataclass
class ShardOutcome:
    """The picklable residue one shard worker ships back to the driver."""

    index: int
    store: LogStore
    info: DeploymentInfo
    #: company_id -> (position in world.companies, digest hour) — the
    #: merge keys' tiebreak data, derived from the replicated world.
    merge_meta: dict
    company_configs: dict
    shard_info: ShardRunInfo
    ledger_stats: LedgerStats
    fault_stats: FaultStats
    cache_stats: SubstrateCacheStats
    crash_stats: CrashStats
    checkpoint_stats: CheckpointStats
    memory_stats: MemoryStats
    events_processed: int
    wall_seconds: float
    seed: int


def _run_shard(index: int, n_shards: int, kwargs: dict) -> ShardOutcome:
    """Worker entry point: one shard's full simulation, summarised.
    Module-level so the process pool can pickle it."""
    started = time.perf_counter()
    result = run_simulation(shard_of=(index, n_shards), **kwargs)
    wall = time.perf_counter() - started
    result.store.drop_indices()
    world = result.world
    return ShardOutcome(
        index=index,
        store=result.store,
        info=result.info,
        merge_meta={
            company.company_id: (i, company.config.digest_hour)
            for i, company in enumerate(world.companies)
        },
        company_configs={
            company.company_id: company.config for company in world.companies
        },
        shard_info=result.shard_stats,
        ledger_stats=result.ledger_stats,
        fault_stats=result.fault_stats,
        cache_stats=result.cache_stats,
        crash_stats=result.crash_stats,
        checkpoint_stats=result.checkpoint_stats,
        memory_stats=result.memory_stats,
        events_processed=result.events_processed,
        wall_seconds=wall,
        seed=result.seed,
    )


# -- deterministic store merge ---------------------------------------------

#: Time field per table, for the per-shard nondecreasing order and the
#: merge key. Digests and probes have bespoke keys (below).
_TIME_FIELDS = {
    "mta": "t",
    "dispatch": "t",
    "challenges": "t",
    "challenge_outcomes": "t_final",
    "web_access": "t",
    "releases": "t_release",
    "whitelist_changes": "t",
    "expiries": "t",
    "outbound": "t",
    "crashes": "t",
}


def _merge_keys(merge_meta: dict) -> dict:
    """Per-table sort keys reconstructing the single-run record order."""
    company_index = {
        company_id: index
        for company_id, (index, _hour) in merge_meta.items()
    }
    digest_hour = {
        company_id: hour for company_id, (_index, hour) in merge_meta.items()
    }

    def time_key(t_field: str):
        def key(record, _field=t_field):
            return (getattr(record, _field), company_index[record.company_id])

        return key

    keys = {table: time_key(field) for table, field in _TIME_FIELDS.items()}
    # Digest records carry no timestamp; they fire at
    # day*DAY + digest_hour*HOUR, in company order for equal hours.
    keys["digests"] = lambda r: (
        r.day,
        digest_hour[r.company_id],
        company_index[r.company_id],
    )
    # Probes: within one probe tick the monitor walks server IPs in
    # sorted order, and each IP belongs to exactly one shard.
    keys["probes"] = lambda r: (r.t, r.ip)
    return keys


def _merge_stores(outcomes: list, spilled: bool) -> LogStore:
    """Interleave the per-shard stores into one whole-world store.

    In-memory tables materialise as plain merged lists (cheap — they fit
    by definition); spilled tables stay on disk behind lazy
    :class:`MergedTable` views, so the merged store's resident footprint
    is still bounded by one chunk per shard.
    """
    keys = _merge_keys(outcomes[0].merge_meta)
    merged = LogStore()
    for table in TABLES:
        parts = [getattr(outcome.store, table) for outcome in outcomes]
        key = keys[table]
        if spilled:
            rows: object = MergedTable(parts, key)
        else:
            rows = list(heapq.merge(*parts, key=key))
        setattr(merged, table, rows)
        merged._versions[table] = sum(
            outcome.store._versions[table] for outcome in outcomes
        )
    return merged


# -- stat aggregation -------------------------------------------------------


def _sum_ledgers(outcomes: list) -> LedgerStats:
    snaps = [outcome.ledger_stats for outcome in outcomes]
    per_company = sorted(
        (snapshot for s in snaps for snapshot in s.per_company),
        key=lambda snapshot: snapshot.company_id,
    )
    violations = tuple(v for s in snaps for v in s.violations)
    return LedgerStats(
        audit=all(s.audit for s in snaps),
        accepted=sum(s.accepted for s in snaps),
        delivered=sum(s.delivered for s in snaps),
        black_dropped=sum(s.black_dropped for s in snaps),
        filter_dropped=sum(s.filter_dropped for s in snaps),
        quarantined_total=sum(s.quarantined_total for s in snaps),
        released=sum(s.released for s in snaps),
        deleted=sum(s.deleted for s in snaps),
        expired=sum(s.expired for s in snaps),
        pending_at_horizon=sum(s.pending_at_horizon for s in snaps),
        stranded=sum(s.stranded for s in snaps),
        leaked_challenge_slots=sum(s.leaked_challenge_slots for s in snaps),
        per_company=tuple(per_company),
        violations=violations,
    )


def _sum_faults(outcomes: list) -> FaultStats:
    stats = [outcome.fault_stats for outcome in outcomes]
    return FaultStats(
        enabled=any(s.enabled for s in stats),
        greylist_deferrals=sum(s.greylist_deferrals for s in stats),
        storm_rejections=sum(s.storm_rejections for s in stats),
        outage_failures=sum(s.outage_failures for s in stats),
        dns_failures=sum(s.dns_failures for s in stats),
        retries_scheduled=sum(s.retries_scheduled for s in stats),
        messages_sent=sum(s.messages_sent for s in stats),
        delivered=sum(s.delivered for s in stats),
        bounced=sum(s.bounced for s in stats),
        expired=sum(s.expired for s in stats),
        drained=sum(s.drained for s in stats),
    )


def _sum_caches(outcomes: list) -> SubstrateCacheStats:
    stats = [outcome.cache_stats for outcome in outcomes]
    return SubstrateCacheStats(
        dns_hits=sum(s.dns_hits for s in stats),
        dns_misses=sum(s.dns_misses for s in stats),
        dnsbl_hits=sum(s.dnsbl_hits for s in stats),
        dnsbl_misses=sum(s.dnsbl_misses for s in stats),
        route_hits=sum(s.route_hits for s in stats),
        route_misses=sum(s.route_misses for s in stats),
    )


def _sum_crashes(outcomes: list) -> CrashStats:
    stats = [outcome.crash_stats for outcome in outcomes]
    by_component: dict = {}
    for s in stats:
        for component, count in s.by_component:
            by_component[component] = by_component.get(component, 0) + count
    return CrashStats(
        enabled=any(s.enabled for s in stats),
        crashes=sum(s.crashes for s in stats),
        by_component=tuple(sorted(by_component.items())),
        inbound_deferred=sum(s.inbound_deferred for s in stats),
        inbound_refused=sum(s.inbound_refused for s in stats),
        digests_skipped=sum(s.digests_skipped for s in stats),
        expiries_skipped=sum(s.expiries_skipped for s in stats),
        outbound_deferred=sum(s.outbound_deferred for s in stats),
        redriven=sum(s.redriven for s in stats),
        lost=sum(s.lost for s in stats),
        journals_rebuilt=sum(s.journals_rebuilt for s in stats),
        journal_mismatches=sum(s.journal_mismatches for s in stats),
    )


def _sum_checkpoints(outcomes: list) -> CheckpointStats:
    stats = [outcome.checkpoint_stats for outcome in outcomes]
    return CheckpointStats(
        every=max(s.every for s in stats),
        written=sum(s.written for s in stats),
        write_seconds=sum(s.write_seconds for s in stats),
        last_path=stats[0].last_path,
        restored_from=stats[0].restored_from,
        restore_seconds=sum(s.restore_seconds for s in stats),
    )


def _sum_memory(outcomes: list) -> MemoryStats:
    stats = [outcome.memory_stats for outcome in outcomes]
    return MemoryStats(
        max_rss_bytes=max(s.max_rss_bytes for s in stats),
        store_live_rows=sum(s.store_live_rows for s in stats),
        store_live_bytes=sum(s.store_live_bytes for s in stats),
        store_spilled_bytes=sum(s.store_spilled_bytes for s in stats),
    )


# -- the driver -------------------------------------------------------------


def _pool_context():
    from repro.experiments.parallel import _pool_context as ctx

    return ctx()


def _resolved_scenario(scenario):
    """The merged result carries the resolved spec, like a plain run's."""
    if scenario is None:
        return None
    from repro.scenarios import resolve_scenario

    return resolve_scenario(scenario)


def run_sharded_simulation(
    preset: Union[str, ScaleConfig] = "tiny",
    seed: int = 7,
    calibration: Optional[Calibration] = None,
    filters_template=None,
    scenarios: Sequence = (),
    config_overrides: Optional[dict] = None,
    faults: Union[str, FaultSettings, None] = None,
    audit: bool = False,
    crashes: Union[str, CrashSettings, None] = None,
    checkpoint_every: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    batch_delivery: bool = True,
    shards: int = 2,
    jobs: Optional[int] = None,
    spill_dir: Optional[str] = None,
    spill_chunk_rows: Optional[int] = None,
    scenario=None,
    chain=None,
) -> SimulationResult:
    """One deployment simulated across *shards* workers, merged back.

    *jobs* bounds concurrent worker processes (default one per shard);
    ``jobs=1`` runs the shards sequentially in this process — same
    result, and the honest way to measure per-shard cost on a small box.
    Checkpoint and spill directories get per-shard ``shard-<k>``
    subdirectories; *resume_from* takes the checkpoint *root* and each
    worker resumes from the newest snapshot in its own subdirectory.

    Attack scenarios (*scenarios* instances and the declarative
    *scenario* spec alike) ship to every worker: each replica replays
    the identical attack planning draws — the replicated-trace invariant
    — while only the victim company's owner shard materialises and
    delivers the forged mail, so the merged store still matches
    ``shards=1`` byte-for-byte.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    started = time.perf_counter()
    jobs = jobs or shards

    per_shard_kwargs = []
    for index in range(shards):
        kwargs: dict = dict(
            preset=preset,
            seed=seed,
            calibration=calibration,
            filters_template=filters_template,
            config_overrides=config_overrides,
            faults=faults,
            audit=audit,
            crashes=crashes,
            checkpoint_every=checkpoint_every,
            batch_delivery=batch_delivery,
            scenarios=tuple(scenarios),
            scenario=scenario,
            chain=chain,
        )
        if checkpoint_dir is not None:
            kwargs["checkpoint_dir"] = os.path.join(
                checkpoint_dir, f"shard-{index}"
            )
        if spill_dir is not None:
            kwargs["spill_dir"] = os.path.join(spill_dir, f"shard-{index}")
            kwargs["spill_chunk_rows"] = spill_chunk_rows
        if resume_from is not None:
            snapshot = latest_checkpoint(
                os.path.join(resume_from, f"shard-{index}")
            )
            if snapshot is None:
                raise CheckpointError(
                    f"no shard-{index} snapshot under {resume_from}; a "
                    "sharded resume needs every shard's subdirectory"
                )
            kwargs["resume_from"] = snapshot
        per_shard_kwargs.append(kwargs)

    if jobs == 1 or shards == 1:
        outcomes = [
            _run_shard(index, shards, kwargs)
            for index, kwargs in enumerate(per_shard_kwargs)
        ]
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, shards), mp_context=_pool_context()
        ) as pool:
            futures = [
                pool.submit(_run_shard, index, shards, kwargs)
                for index, kwargs in enumerate(per_shard_kwargs)
            ]
            outcomes = [future.result() for future in futures]

    # Replica-consistency gate: every shard's view of the full exchange
    # stream must agree before any merging happens.
    manifests = reconcile([o.shard_info.manifests for o in outcomes])

    ledger_stats = _sum_ledgers(outcomes)
    if not ledger_stats.conserved:
        raise LedgerError(
            "message-lifecycle conservation violated across shards:\n  "
            + "\n  ".join(ledger_stats.violations)
        )

    merged = _merge_stores(outcomes, spilled=spill_dir is not None)
    # Ownership straight from the workers: local companies are the ones
    # whose installations produced ledger snapshots.
    owners: dict = {}
    for outcome in outcomes:
        for snapshot in outcome.ledger_stats.per_company:
            owners[snapshot.company_id] = outcome.index

    shard_stats = ShardStats(
        n_shards=shards,
        jobs=jobs,
        owners=owners,
        manifests=manifests,
        per_shard=tuple(
            ShardPerf(
                index=outcome.index,
                companies=len(outcome.ledger_stats.per_company),
                wall_seconds=outcome.wall_seconds,
                events_processed=outcome.events_processed,
                local_rows=outcome.shard_info.local_rows,
                remote_rows=outcome.shard_info.remote_rows,
                max_rss_bytes=outcome.memory_stats.max_rss_bytes,
            )
            for outcome in outcomes
        ),
    )
    return SimulationResult(
        store=merged,
        world=None,
        simulator=None,
        installations={
            company_id: ShardedInstallationView(config)
            for company_id, config in sorted(
                outcomes[0].company_configs.items()
            )
        },
        monitor=None,
        info=outcomes[0].info,
        seed=seed,
        wall_seconds=time.perf_counter() - started,
        cache_stats=_sum_caches(outcomes),
        fault_stats=_sum_faults(outcomes),
        ledger_stats=ledger_stats,
        crash_stats=_sum_crashes(outcomes),
        checkpoint_stats=_sum_checkpoints(outcomes),
        memory_stats=_sum_memory(outcomes),
        events_processed=sum(o.events_processed for o in outcomes),
        shard_stats=shard_stats,
        scenario=_resolved_scenario(scenario),
    )
