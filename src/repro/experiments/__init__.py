"""Experiment orchestration: run the simulated deployment, then regenerate
each of the paper's tables and figures from its logs."""

from repro.experiments.runner import SimulationResult, run_simulation
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["run_simulation", "SimulationResult", "EXPERIMENTS", "run_experiment"]
