"""Experiment orchestration: run the simulated deployment (serially or
fanned out over a process pool), then regenerate each of the paper's
tables and figures from its logs."""

from repro.experiments.runner import SimulationResult, run_simulation
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.parallel import (
    ParallelRunner,
    RunCache,
    RunSpec,
    RunSummary,
    run_specs,
)

__all__ = [
    "run_simulation",
    "SimulationResult",
    "EXPERIMENTS",
    "run_experiment",
    "ParallelRunner",
    "RunCache",
    "RunSpec",
    "RunSummary",
    "run_specs",
]
