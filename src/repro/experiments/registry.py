"""Experiment registry: maps every paper table/figure id to its analysis.

The ids follow DESIGN.md's per-experiment index. Each renderer takes a
:class:`~repro.experiments.runner.SimulationResult` and returns the
rendered paper-vs-measured report for that artifact.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis import (
    blacklisting,
    challenges,
    churn,
    clustering,
    delays,
    discussion,
    engine_breakdown,
    faults,
    flow,
    frontier,
    general_stats,
    ledger,
    mta_breakdown,
    recovery,
    reflection,
    spf_study,
    timeseries,
    variability,
    verdicts,
)
from repro.experiments.runner import SimulationResult

#: experiment id -> function(SimulationResult) -> str (rendered report)
EXPERIMENTS: Dict[str, Callable[[SimulationResult], str]] = {
    "fig1": lambda r: flow.render(r.store),
    "tab_drop": lambda r: mta_breakdown.render(r.store),
    "fig2": lambda r: mta_breakdown.render(r.store),
    "fig3": lambda r: engine_breakdown.render(r.store),
    "tab1": lambda r: general_stats.render(r.store, r.info),
    "tab1_daily": lambda r: timeseries.render(r.store, r.info),
    "fig4a": lambda r: challenges.render(r.store),
    "fig4b": lambda r: challenges.render(r.store),
    "sec31": lambda r: reflection.render(r.store),
    "sec32": lambda r: reflection.render(r.store),
    "sec33": lambda r: reflection.render(r.store),
    "fig5": lambda r: variability.render(r.store, r.info),
    "fig6": lambda r: clustering.render(r.store, r.info),
    "sec41": lambda r: clustering.render(r.store, r.info),
    "fig7": lambda r: delays.render(r.store),
    "fig8": lambda r: delays.render(r.store),
    "sec42": lambda r: delays.render(r.store),
    "fig9": lambda r: churn.render(r.store, r.info),
    "sec43": lambda r: churn.render(r.store, r.info),
    "fig10": lambda r: churn.render(r.store, r.info),
    "fig11": lambda r: blacklisting.render(r.store, r.info),
    "sec51": lambda r: blacklisting.render(r.store, r.info),
    "fig12": lambda r: spf_study.render(r.store),
    "sec6": lambda r: discussion.render(r.store, r.info),
    # Takes the full result (not just the store): the fault-injection
    # counters live on SimulationResult.fault_stats, outside the log store.
    "faults": lambda r: faults.render_result(r),
    # Same shape: the lifecycle verdict lives on result.ledger_stats.
    "audit": lambda r: ledger.render_result(r),
    # Same shape again: crash counters and checkpoint overhead live on
    # result.crash_stats / result.checkpoint_stats.
    "recovery": lambda r: recovery.render_result(r),
    # Scenario pass/fail verdicts evaluate result.scenario's declared
    # checks against the store (a fixed notice for scenario-free runs).
    "verdicts": lambda r: verdicts.render_result(r),
    # The FP/FN frontier is a cross-run sweep (chains x scenarios x
    # seeds); it re-simulates through the result cache rather than
    # analysing the passed run. Not in CANONICAL_ORDER for that reason.
    "frontier": lambda r: frontier.render_result(r),
}


def run_experiment(exp_id: str, result: SimulationResult) -> str:
    """Render one experiment's paper-vs-measured report."""
    try:
        renderer = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return renderer(result)


#: One id per distinct report (several ids share a renderer — e.g. fig4a
#: and fig4b are one combined report).
CANONICAL_ORDER = (
    "tab_drop",
    "fig1",
    "fig3",
    "tab1",
    "tab1_daily",
    "fig4a",
    "sec31",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig11",
    "fig12",
    "sec6",
    "faults",
    "audit",
    "recovery",
    "verdicts",
)


def run_all(result: SimulationResult) -> str:
    """Render every distinct experiment report once, in paper order."""
    parts = []
    for exp_id in CANONICAL_ORDER:
        parts.append(f"=== {exp_id} ===\n{EXPERIMENTS[exp_id](result)}")
    return "\n\n".join(parts)
