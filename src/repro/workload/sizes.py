"""Message-size model.

Sizes matter for exactly one paper quantity — §3.3's reflected-traffic
ratio RT (challenge bytes / inbound bytes at the CR filter, measured at
2.5 %) — but we model them on every message so the size sensor can be
deployed "to all the servers" exactly as the paper describes.
"""

from __future__ import annotations

import math
import random

from repro.core.message import MessageKind
from repro.workload.calibration import Calibration


class SizeModel:
    """Draws message sizes from per-kind log-normal distributions."""

    def __init__(self, calibration: Calibration, rng: random.Random) -> None:
        self.calibration = calibration
        self.rng = rng

    def _lognormal(self, median: float, sigma: float) -> int:
        value = median * math.exp(self.rng.gauss(0.0, sigma))
        return max(500, min(int(value), self.calibration.size_cap))

    def _lognormal_batch(self, median: float, sigma: float, n: int) -> list:
        """*n* consecutive :meth:`_lognormal` draws as one tight loop.

        Draw-for-draw identical to calling the scalar method *n* times
        (``random.gauss`` is stateful — it caches its paired variate — so
        "identical" includes that interleaving). Used by the trace
        generator to hoist size sampling out of per-message code; legal
        because sizes come from their own RNG stream and each caller's
        loop was already a homogeneous run of the same distribution.
        """
        gauss = self.rng.gauss
        exp = math.exp
        cap = self.calibration.size_cap
        out = []
        append = out.append
        for _ in range(n):
            value = int(median * exp(gauss(0.0, sigma)))
            append(500 if value < 500 else (cap if value > cap else value))
        return out

    def spam(self) -> int:
        return self._lognormal(
            self.calibration.spam_size_median, self.calibration.spam_size_sigma
        )

    def spam_batch(self, n: int) -> list:
        return self._lognormal_batch(
            self.calibration.spam_size_median,
            self.calibration.spam_size_sigma,
            n,
        )

    def legit(self) -> int:
        return self._lognormal(
            self.calibration.legit_size_median, self.calibration.legit_size_sigma
        )

    def legit_batch(self, n: int) -> list:
        return self._lognormal_batch(
            self.calibration.legit_size_median,
            self.calibration.legit_size_sigma,
            n,
        )

    def newsletter(self) -> int:
        return self._lognormal(
            self.calibration.newsletter_size_median,
            self.calibration.newsletter_size_sigma,
        )

    def for_kind(self, kind: MessageKind) -> int:
        if kind is MessageKind.SPAM:
            return self.spam()
        if kind is MessageKind.NEWSLETTER:
            return self.newsletter()
        return self.legit()

    def challenge(self) -> int:
        """Challenges are a fixed small template."""
        return self.calibration.challenge_size
