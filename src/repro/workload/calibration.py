"""Calibration constants — every paper-anchored tunable in one place.

Each constant is annotated with the published aggregate it is anchored to.
The workload generator *consumes* these to shape its traffic; the analysis
pipeline *never* reads them — it re-measures the corresponding quantities
from simulation logs, so calibrated inputs and measured outputs stay
honestly separated.

Derivation notes (paper §2, Figure 1, per 1000 messages at a non-open-relay
MTA-IN): ~751 are dropped by the MTA checks, 249 reach the CR dispatcher,
31 land in the white spool, ~4 in the black spool, ~214 in the gray spool;
filters drop the large majority of gray mail, and ~48 challenges go out
(reflection ratio R = 48/249 = 19.3 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.simtime import HOUR, MINUTE


@dataclass(frozen=True)
class Calibration:
    """All workload tunables. Defaults reproduce the paper's aggregates."""

    # ------------------------------------------------------------------
    # Per-user inbound rates (messages/user/day at a closed-relay company).
    # Paper: 797,679 emails/day over 19,426 protected users ≈ 41/user/day.
    # ------------------------------------------------------------------
    #: Mail from already-whitelisted contacts → white spool.
    #: Anchor: 31/1000 messages land in the white spool (Fig. 1).
    white_rate: float = 1.05
    #: Mail from senders in the user's personal blacklist → black spool.
    #: Anchor: black spool ≈ 0.35 M vs white 2.74 M (Table 1) → ~4/1000.
    black_rate: float = 0.16
    #: Newsletter issues per user per day (subscribed, not yet whitelisted).
    newsletter_rate: float = 0.25
    #: Spam addressed to *valid* protected users.
    #: Anchor: gray spool ≈ 214/1000 minus legit-new and newsletters.
    spam_valid_rate: float = 8.5

    # Spam addressed elsewhere, as multiples of ``spam_valid_rate``:
    #: → unknown recipients (dictionary attacks). Anchor: 62.36 % of
    #: incoming dropped as "Unknown Recipient" vs ~207/1000 valid spam.
    spam_unknown_recipient_factor: float = 3.3
    #: → foreign domains (relay probes). Anchor: "No relay" 2.27 %.
    spam_foreign_factor: float = 0.110
    #: Fraction of spam with an unresolvable sender domain.
    #: Anchor: "Unable to resolve the domain" 4.19 % of incoming.
    spam_unresolvable_sender_frac: float = 0.0455
    #: Fraction of spam with a syntactically malformed sender address.
    #: Anchor: "Malformed email" 0.06 % of incoming.
    spam_malformed_sender_frac: float = 0.00065
    #: Fraction of spam sent from a site-blocked sender address.
    #: Anchor: "Sender rejected" 0.03 % of incoming.
    spam_rejected_sender_frac: float = 0.00033
    #: Extra spam addressed to an open relay's relayed domains, as a
    #: multiple of its own-domain spam. Anchor: open relays "pass most of
    #: the messages to the next layer" (§2) and send ~9 % more challenges.
    relay_spam_factor: float = 2.5
    #: Fraction of relayed spam delivered through "snowshoe" relay abusers
    #: (well-configured hosts with PTR records, absent from blacklists).
    #: This is what degrades the filters on relayed traffic and yields the
    #: open relays' extra challenges (§2: "the engine filters have a lower
    #: performance rate, and the number of challenges sent increases").
    relay_snowshoe_frac: float = 0.025
    #: Exponent coupling a company's legitimate-mail multiplier to its spam
    #: multiplier: organisations that receive a lot of one receive a lot of
    #: the other (address exposure drives both).
    legit_spam_coupling: float = 0.65

    # ------------------------------------------------------------------
    # Botnet characteristics (drive the auxiliary-filter drop rates).
    # Anchors: filter drops split rDNS 3.53 M / RBL 4.97 M / AV 0.27 M
    # (Table 1); filters drop the large majority of gray mail (Fig. 3,
    # §5.2 quotes 77.5 %).
    # ------------------------------------------------------------------
    #: Probability a bot IP has a PTR record (passes the reverse-DNS filter).
    bot_ptr_prob: float = 0.63
    #: Probability a bot IP is on the product's RBL during its campaign.
    #: (Used for the flagship provider; per-service coverage below.)
    bot_listed_prob: float = 0.68
    #: Per-DNSBL coverage of botnet IPs: different blacklists catch
    #: different fractions of the same botnets, so companies subscribing to
    #: different providers see different filter effectiveness (part of the
    #: Fig. 5 per-company variability).
    bot_listing_probs: tuple = (
        ("spamhaus-zen", 0.72),
        ("barracuda-rbl", 0.65),
        ("cbl-abuseat", 0.75),
        ("sorbs-spam", 0.55),
        ("spamcop-bl", 0.62),
    )
    #: Provider market shares used when assigning a company's RBL filter.
    rbl_provider_weights: tuple = (
        ("spamhaus-zen", 0.5),
        ("barracuda-rbl", 0.15),
        ("cbl-abuseat", 0.15),
        ("sorbs-spam", 0.1),
        ("spamcop-bl", 0.1),
    )
    #: Fraction of spam messages carrying detectable malware.
    spam_virus_frac: float = 0.025
    #: Antivirus engine detection rate.
    antivirus_detection_rate: float = 0.98

    # ------------------------------------------------------------------
    # Spoofed-sender class mix for spam (drives Fig. 4(a)).
    # Anchors: 49 % of challenges delivered; 71.7 % of undelivered bounced
    # for non-existent recipient; rest expired / blacklist / other.
    # ------------------------------------------------------------------
    #: P(sender = non-existent mailbox at a real domain) → 550 bounce.
    #: (Informational: the actual value is the residual after the three
    #: fractions below plus the trap share.)
    spoof_nonexistent_frac: float = 0.41
    #: P(sender domain resolves but its server is dead) → retries → expiry.
    spoof_dead_domain_frac: float = 0.12
    #: P(sender = an innocent third party's real address) → delivered
    #: backscatter spam.
    spoof_innocent_frac: float = 0.30
    #: P(sender = the spammer's own working address) → delivered, ignored.
    spoof_real_frac: float = 0.17
    #: Baseline P(sender = a spam-trap address); scaled per company by its
    #: trap affinity (§5.1 heterogeneity). The residual probability mass
    #: after the four fractions above goes to traps.

    # ------------------------------------------------------------------
    # Per-company heterogeneity (drives Fig. 5 and §5.1).
    # ------------------------------------------------------------------
    #: Log-normal sigma of the per-company spam-load multiplier; spreads
    #: the white-share histogram over 10–70 % (Fig. 5).
    company_spam_sigma: float = 0.85
    #: Log-normal sigma of the per-company legit-mail multiplier.
    company_legit_sigma: float = 0.35
    #: Trap affinity of ordinary companies: fraction of challenged spam
    #: whose spoofed sender is a trap address. Anchor: 75 % of challenge
    #: servers never blacklisted in 132 days (§5.1).
    trap_affinity_clean_max: float = 0.0004
    #: Trap affinities of the few "dirty" companies (harvested lists with
    #: heavy trap seeding). Anchor: four servers listed for 17/33/113/129
    #: days (§5.1), independent of server size.
    trap_affinity_dirty: tuple = (0.05, 0.08, 0.12, 0.18)
    #: Number of dirty companies.
    dirty_companies: int = 4

    # ------------------------------------------------------------------
    # Legitimate senders and whitelist churn (drives Fig. 7/8/9, §4.3).
    # ------------------------------------------------------------------
    #: Per-user sociality s(u) ~ LogNormal(ln(median), sigma): total
    #: whitelist additions per day. Anchors: 0.3 new entries/user/day on
    #: average; Fig. 9 bins (51.1 % of whitelists gain 1–10 entries per
    #: 60 days ... 0.1 % gain >600).
    sociality_median: float = 0.17
    sociality_sigma: float = 1.3
    #: Fraction of sociality realised as outbound mail to new addresses.
    sociality_outbound_share: float = 0.80
    #: Fraction realised as manual whitelist imports.
    sociality_manual_share: float = 0.05
    #: New-contact inbound mail rate = this × s(u) (first-contact mail that
    #: triggers a challenge; its solution realises the remaining share).
    sociality_new_contact_factor: float = 0.14
    #: Outbound mail to *known* addresses (traffic only, no churn).
    outbound_known_rate: float = 0.3
    #: Inbound bounce notifications (DSNs with the null reverse-path) per
    #: user per day — returns of misaddressed outbound mail. Never
    #: challenged (RFC 3834 loop protection).
    dsn_rate: float = 0.08

    #: Probability a legitimate new contact eventually solves the CAPTCHA.
    #: Anchor: half of the quarantined-then-released mail is released in
    #: <30 min via CAPTCHA (Fig. 7), the rest via digest.
    legit_solve_prob: float = 0.78
    #: Probability a legitimate sender opens the page but abandons it.
    #: Anchor: 0.25 % of delivered challenges visited-but-not-solved.
    legit_abandon_prob: float = 0.015
    #: Solve-delay mixture: P(fast), log-normal median (s) and sigma of the
    #: fast component; the rest is uniform over the slow ranges below.
    #: Anchor: 30 % of releases < 5 min, 50 % < 30 min, knee at 4 h (Fig. 7/8).
    solve_fast_prob: float = 0.80
    solve_fast_median: float = 6 * MINUTE
    solve_fast_sigma: float = 1.4
    solve_medium_prob: float = 0.15  # uniform(30 min, 4 h)
    #: remaining probability: uniform(4 h, 3 d)

    #: CAPTCHA attempts needed by solvers (Fig. 4(b): never >5 observed).
    captcha_attempts_probs: tuple = (0.78, 0.15, 0.05, 0.015, 0.005)

    #: Probability an *innocent* backscatter recipient opens the challenge.
    innocent_open_prob: float = 0.012
    #: Probability they then solve it (out of curiosity / confusion).
    #: Anchor: spurious spam delivery ≈ 1 per 10,000 challenges sent (§4.1).
    innocent_solve_given_open: float = 0.03

    #: Share of newsletter sources whose operator answers challenges, and
    #: the solve-probability range for those that do. Anchor: Fig. 6's
    #: high-sender-similarity clusters with solve rates up to 97 %.
    newsletter_solver_share: float = 0.30
    newsletter_solve_range: tuple = (0.5, 0.97)

    # Unsolicited marketing blasts (Fig. 6's high sender-similarity
    # clusters: fixed subjects, near-identical senders, real servers).
    #: Share of marketing operators who answer challenges.
    marketing_solver_share: float = 0.25
    #: Solve probability range for those who do (up to 97 %, Fig. 6).
    marketing_solve_range: tuple = (0.3, 0.97)
    #: Days between blasts of one source.
    marketing_period_days: tuple = (4.0, 8.0)
    #: Fraction of each company's users one blast reaches.
    marketing_coverage: tuple = (0.02, 0.08)

    # ------------------------------------------------------------------
    # Digest behaviour (drives Fig. 7's digest curve, Fig. 10, §3.2's 2 %).
    # ------------------------------------------------------------------
    #: Probability a user reviews their digest on a given day.
    digest_review_prob: float = 0.65
    #: P(whitelist) per reviewed entry, by ground-truth kind.
    digest_whitelist_prob_legit: float = 0.70
    digest_whitelist_prob_newsletter: float = 0.50
    #: P(whitelist) for unsolicited marketing blasts — users rarely rescue
    #: junk marketing from the digest.
    digest_whitelist_prob_marketing: float = 0.08
    #: P(delete) per reviewed spam entry.
    digest_delete_prob_spam: float = 0.30
    #: User acts between 5 min and 4 h after the digest is generated.
    digest_act_delay_range: tuple = (5 * MINUTE, 4 * HOUR)

    # ------------------------------------------------------------------
    # Message sizes (drive §3.3's RT = 2.5 %).
    # ------------------------------------------------------------------
    #: Log-normal (median, sigma) of spam message sizes, bytes.
    spam_size_median: float = 6_000.0
    spam_size_sigma: float = 1.2
    #: Legitimate mail (corporate, attachment-heavy tail).
    legit_size_median: float = 16_000.0
    legit_size_sigma: float = 1.6
    #: Newsletters (HTML-heavy).
    newsletter_size_median: float = 22_000.0
    newsletter_size_sigma: float = 0.8
    #: Challenge emails are a small fixed template.
    challenge_size: int = 1_800
    size_cap: int = 20_000_000

    # ------------------------------------------------------------------
    # SPF ecosystem (drives Fig. 12).
    # Anchors: dropping SPF-fails would cut expired challenges ~9 %,
    # bounced ~4.1 %, and cost 0.25 % of solved challenges.
    # ------------------------------------------------------------------
    #: P(an external receiving domain runs classic greylisting: the first
    #: delivery attempt from an unknown client IP gets a 451 and must be
    #: retried).
    ext_domain_greylist_prob: float = 0.20
    #: P(an ordinary external domain publishes "v=spf1 ip4:<server> -all").
    ext_domain_spf_prob: float = 0.041
    #: P(a dead/parked domain publishes a restrictive SPF record).
    dead_domain_spf_prob: float = 0.09
    #: P(a trap domain publishes SPF).
    trap_domain_spf_prob: float = 0.04
    #: P(a spammer-owned domain publishes "v=spf1 +all").
    spammer_domain_spf_prob: float = 0.25
    #: P(a legit sender submits via an IP outside their domain's SPF).
    legit_spf_misroute_prob: float = 0.06
    #: P(a newsletter source domain publishes SPF).
    newsletter_spf_prob: float = 0.60

    # ------------------------------------------------------------------
    # Campaign structure (drives Fig. 6 clustering).
    # ------------------------------------------------------------------
    #: Mean new campaigns per day across the whole world (scaled).
    campaign_arrivals_per_day: float = 14.0
    #: Campaign duration range, days.
    campaign_duration_days: tuple = (0.5, 10.0)
    #: Log-normal sigma of per-campaign intensity (cluster-size spread).
    campaign_intensity_sigma: float = 1.0
    #: Bot pool size range per campaign.
    campaign_bots: tuple = (8, 400)
    #: Spoofed-sender pool size as a fraction of expected campaign volume
    #: (finite pools make senders recur → challenge dedup, §2 gray flow).
    campaign_sender_pool_frac: float = 0.35
    #: Words per campaign subject (Fig. 6 clusters subjects ≥10 words).
    campaign_subject_words: tuple = (10, 14)

    #: Fraction of each company's users a campaign's harvested list covers
    #: (repeated hits on the same mailboxes drive challenge de-duplication).
    campaign_target_coverage: tuple = (0.3, 0.9)

    # Contacts / world sizing (per protected user).
    contacts_per_user: tuple = (8, 120)
    nuisance_senders_per_user: tuple = (1, 5)
    seed_whitelist_share: float = 0.98
    #: P(a subscriber's whitelist already contains their newsletter's sender
    #: addresses) — subscriptions predate the monitoring window.
    newsletter_seed_prob: float = 0.97

    # Diurnal shape: hourly weights (24 entries) for legit and spam mail.
    legit_hour_weights: tuple = (
        1, 1, 1, 1, 1, 2, 4, 8, 14, 16, 15, 13,
        10, 13, 15, 14, 12, 9, 6, 4, 3, 2, 2, 1,
    )
    spam_hour_weights: tuple = (
        8, 8, 8, 9, 9, 9, 10, 10, 11, 11, 11, 11,
        11, 11, 11, 11, 10, 10, 10, 9, 9, 9, 8, 8,
    )
    #: Weekend volume multipliers.
    legit_weekend_factor: float = 0.35
    spam_weekend_factor: float = 0.92

    def spoof_trap_frac(self, trap_affinity: float) -> float:
        """Trap share of the spoofed-sender mix for a given company."""
        return min(trap_affinity, 0.5)

    def spoof_mix(self, trap_affinity: float) -> dict:
        """Full spoofed-sender distribution for one company.

        The trap share displaces the non-existent share (both are
        "harvested garbage" addresses on real lists), keeping the
        delivered fraction stable.
        """
        trap = self.spoof_trap_frac(trap_affinity)
        nonexistent = max(
            0.0,
            1.0
            - self.spoof_dead_domain_frac
            - self.spoof_innocent_frac
            - self.spoof_real_frac
            - trap,
        )
        mix = {
            "nonexistent": nonexistent,
            "dead_domain": self.spoof_dead_domain_frac,
            "innocent": self.spoof_innocent_frac,
            "real": self.spoof_real_frac,
            "trap": trap,
        }
        # Extreme trap affinities can exhaust the non-existent share;
        # renormalise so the mix is always a distribution.
        total = sum(mix.values())
        return {name: share / total for name, share in mix.items()}


DEFAULT_CALIBRATION = Calibration()
