"""Botnet spam campaigns.

A campaign is a burst of near-identical messages (one fixed multi-word
subject — the clustering key of Fig. 6) delivered from a pool of infected
machines, with forged envelope senders drawn from "harvested" address lists.
The forgery-target mix (non-existent mailboxes, dead domains, innocent third
parties, the spammer's own addresses, spam traps) is what determines the
fate of the challenges reflected back (§3.2 / Fig. 4(a)).

Sender pools are finite and reused within a campaign, so a recipient can be
hit repeatedly by the same forged sender — which is exactly what makes the
CR dispatcher's pending-challenge de-duplication matter.
"""

from __future__ import annotations

import math
import random
from bisect import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.message import SenderClass
from repro.workload import naming
from repro.workload.calibration import Calibration

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.entities import Company, World

_CLASS_BY_NAME = {
    "nonexistent": SenderClass.NONEXISTENT_MAILBOX,
    "dead_domain": SenderClass.DEAD_DOMAIN,
    "innocent": SenderClass.INNOCENT_THIRD_PARTY,
    "real": SenderClass.REAL,
    "trap": SenderClass.SPAM_TRAP,
}


@dataclass
class Campaign:
    """One spam campaign's static parameters and mutable sender pools."""

    campaign_id: str
    subject: str
    start: float
    end: float
    #: Relative share of the day's spam volume this campaign captures.
    intensity: float
    bot_ips: list[str]
    #: Per-message probability of carrying detectable malware.
    virus_prob: float
    #: Probability of reusing a pooled sender vs forging a fresh one.
    sender_reuse_prob: float
    #: Range of the harvested-list coverage of a company's user base.
    target_coverage: tuple = (0.3, 0.9)
    _pools: dict[SenderClass, list[str]] = field(default_factory=dict)
    _targets: dict[str, list] = field(default_factory=dict)

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end

    def sample_bot(self, rng: random.Random) -> str:
        return rng.choice(self.bot_ips)

    def sample_target(
        self, company: "Company", rng: random.Random
    ) -> "object":
        """Pick a protected user from this campaign's harvested list.

        Each campaign only holds addresses for a subset of the company's
        users; those mailboxes get hit repeatedly over the campaign's life,
        which is what makes the dispatcher's pending-challenge
        de-duplication bite.
        """
        targets = self._targets.get(company.company_id)
        if targets is None:
            coverage = rng.uniform(*self.target_coverage)
            count = max(1, round(coverage * len(company.users)))
            targets = rng.sample(company.users, min(count, len(company.users)))
            self._targets[company.company_id] = targets
        return rng.choice(targets)

    def sample_sender(
        self, world: "World", company: "Company", rng: random.Random
    ) -> tuple[str, SenderClass]:
        """Draw a forged envelope sender for a message aimed at *company*.

        The class mix depends on the company's trap affinity (how trap-laden
        the harvested lists containing its addresses are, §5.1).
        """
        names, cum = world.spoof_sender_cum(company.trap_affinity)
        roll = rng.random()
        # bisect_right = first index with roll < cum[i]: the same pick the
        # old linear cumulative walk made, including its "nonexistent"
        # fallback when float rounding leaves roll past the last share.
        idx = bisect(cum, roll)
        class_name = names[idx] if idx < len(names) else "nonexistent"
        sender_class = _CLASS_BY_NAME[class_name]
        pools = self._pools
        pool = pools.get(sender_class)
        if pool is None:
            pool = pools[sender_class] = []
        if pool and rng.random() < self.sender_reuse_prob:
            return rng.choice(pool), sender_class
        address = self._fresh_sender(world, sender_class, rng)
        pool.append(address)
        return address, sender_class

    def _fresh_sender(
        self, world: "World", sender_class: SenderClass, rng: random.Random
    ) -> str:
        if sender_class is SenderClass.NONEXISTENT_MAILBOX:
            return world.sample_nonexistent_sender(rng)
        if sender_class is SenderClass.DEAD_DOMAIN:
            return world.sample_dead_domain_sender(rng)
        if sender_class is SenderClass.INNOCENT_THIRD_PARTY:
            return world.sample_innocent_sender(rng)
        if sender_class is SenderClass.SPAM_TRAP:
            return world.sample_trap_sender(rng)
        return world.sample_spammer_sender(rng)


class CampaignFactory:
    """Spawns campaigns with log-normally spread intensities."""

    def __init__(self, calibration: Calibration, rng: random.Random) -> None:
        self.calibration = calibration
        self.rng = rng
        self._next_id = 0

    def spawn(self, world: "World", now: float) -> Campaign:
        cal = self.calibration
        rng = self.rng
        duration_days = rng.uniform(*cal.campaign_duration_days)
        duration = duration_days * 86400.0
        n_bots = rng.randint(*cal.campaign_bots)
        # A twentieth of campaigns are malware runs; the rest are clean,
        # averaging out to ``spam_virus_frac`` of all spam.
        if rng.random() < 0.05:
            virus_prob = min(1.0, cal.spam_virus_frac * 20)
        else:
            virus_prob = 0.0
        subject_words = rng.randint(*cal.campaign_subject_words)
        campaign = Campaign(
            campaign_id=f"sc-{self._next_id}",
            subject=naming.make_campaign_subject(rng, subject_words),
            start=now,
            end=now + duration,
            intensity=math.exp(rng.gauss(0.0, cal.campaign_intensity_sigma)),
            bot_ips=world.create_bot_ips(
                n_bots, rng, listed_duration=duration + 30 * 86400.0, now=now
            ),
            virus_prob=virus_prob,
            sender_reuse_prob=1.0 - cal.campaign_sender_pool_frac,
            target_coverage=cal.campaign_target_coverage,
        )
        self._next_id += 1
        return campaign
