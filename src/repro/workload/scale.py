"""Scale presets.

The paper's deployment (19,426 users, 184 days, 90.4 M messages) is far too
large to simulate per-message in CI, so presets shrink the user base, the
observation window, and per-user volume. Every quantity the analyses report
is a ratio, a distribution, or a correlation, so shapes survive scaling;
the two absolute-threshold knobs (DNSBL listing thresholds and the Fig. 6
minimum cluster size) are scaled alongside the volume to keep event *rates*
per company-day roughly invariant.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScaleConfig:
    name: str
    #: Companies in the deployment (paper: 47, of which 13 open relays).
    n_companies: int
    open_relays: int
    #: Protected users across all companies (paper: 19,426).
    total_users: int
    #: Simulated days (paper: 184; blacklist probe ran 132).
    n_days: int
    #: Multiplier on every per-user traffic rate.
    volume_scale: float
    #: External (contact-hosting) domains in the world.
    ext_domains: int
    #: Resolvable-but-dead domains (spoofed sender pool).
    dead_domains: int
    #: Unresolvable domains (MTA-IN "unable to resolve" fodder).
    unresolvable_domains: int
    #: Trap domains per DNSBL service × traps per domain.
    trap_domains_per_service: int
    traps_per_domain: int
    #: Extra innocent mailboxes beyond the contact pool.
    innocent_pool_size: int
    #: Multiplier on DNSBL listing thresholds (≤1 at reduced volume).
    dnsbl_threshold_scale: float
    #: Fig. 6 minimum cluster size at this scale (paper: 50).
    min_cluster_size: int
    #: Multiplier on campaign arrival rate.
    campaign_rate_scale: float


_PRESETS: dict[str, ScaleConfig] = {
    # Unit/integration tests: seconds of wall time.
    "tiny": ScaleConfig(
        name="tiny",
        n_companies=6,
        open_relays=2,
        total_users=120,
        n_days=10,
        volume_scale=0.35,
        ext_domains=60,
        dead_domains=40,
        unresolvable_domains=30,
        trap_domains_per_service=2,
        traps_per_domain=10,
        innocent_pool_size=400,
        dnsbl_threshold_scale=0.5,
        min_cluster_size=4,
        campaign_rate_scale=0.35,
    ),
    # Heavier integration tests.
    "small": ScaleConfig(
        name="small",
        n_companies=12,
        open_relays=3,
        total_users=300,
        n_days=16,
        volume_scale=0.35,
        ext_domains=120,
        dead_domains=80,
        unresolvable_domains=50,
        trap_domains_per_service=3,
        traps_per_domain=12,
        innocent_pool_size=900,
        dnsbl_threshold_scale=0.5,
        min_cluster_size=5,
        campaign_rate_scale=0.5,
    ),
    # The benchmark deployment: all 47 companies, ~6 weeks.
    "bench": ScaleConfig(
        name="bench",
        n_companies=47,
        open_relays=13,
        total_users=900,
        n_days=42,
        volume_scale=0.30,
        ext_domains=300,
        dead_domains=180,
        unresolvable_domains=90,
        trap_domains_per_service=3,
        traps_per_domain=15,
        innocent_pool_size=2500,
        dnsbl_threshold_scale=0.5,
        min_cluster_size=8,
        campaign_rate_scale=1.0,
    ),
    # Scale-stability validation: ~4x the bench volume on a longer
    # window. Used by scripts/scale_stability.py, not by the test suite.
    "medium": ScaleConfig(
        name="medium",
        n_companies=47,
        open_relays=13,
        total_users=1500,
        n_days=70,
        volume_scale=0.4,
        ext_domains=450,
        dead_domains=250,
        unresolvable_domains=120,
        trap_domains_per_service=3,
        traps_per_domain=18,
        innocent_pool_size=4000,
        dnsbl_threshold_scale=0.7,
        min_cluster_size=15,
        campaign_rate_scale=1.3,
    ),
    # Closest to the paper that is still tractable on one machine
    # (hours of wall time); not exercised by the test suite.
    "paper": ScaleConfig(
        name="paper",
        n_companies=47,
        open_relays=13,
        total_users=4000,
        n_days=184,
        volume_scale=1.0,
        ext_domains=1200,
        dead_domains=600,
        unresolvable_domains=250,
        trap_domains_per_service=4,
        traps_per_domain=25,
        innocent_pool_size=10000,
        dnsbl_threshold_scale=1.0,
        min_cluster_size=50,
        campaign_rate_scale=2.0,
    ),
}


def get_preset(name: str) -> ScaleConfig:
    """Look up a preset by name; raises ``KeyError`` with the valid names."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scale preset {name!r}; valid presets: {sorted(_PRESETS)}"
        ) from None


def preset_names() -> list[str]:
    return sorted(_PRESETS)
