"""World construction: companies, users, contacts, and the outside internet.

``build_world`` assembles everything static about the deployment:

* the 47 companies (13 open relays), with log-normally distributed sizes,
  per-company spam/legit load multipliers, and trap affinities;
* protected users with contact lists (seeded whitelists), nuisance senders
  (seeded blacklists), and per-user sociality rates;
* the external internet: contact-hosting domains (with DNS, PTR, SPF, and
  real mailboxes), dead domains, unresolvable domains, spammer-owned
  domains, newsletter sources, spam-trap domains, and the eight DNSBL
  operators;
* the simulated DNS and message-routing fabric.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Optional

from repro.blacklistd.service import (
    DEFAULT_SERVICE_POLICIES,
    DnsblService,
    ListingPolicy,
)
from repro.blacklistd.spamtrap import TrapDirectory
from repro.core.config import CompanyConfig, FilterSettings
from repro.net.dns import DnsRegistry, Resolver
from repro.net.hosts import RemoteMailHost
from repro.net.internet import Internet
from repro.util.rng import RngStreams, poisson
from repro.workload import naming
from repro.workload.calibration import Calibration
from repro.workload.scale import ScaleConfig


class IpAllocator:
    """Hands out unique dotted-quad IPs from a documentation-style block."""

    def __init__(self, base: int = (100 << 24)) -> None:
        self._next = base

    def allocate(self) -> str:
        value = self._next
        self._next += 1
        return (
            f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}"
            f".{(value >> 8) & 0xFF}.{value & 0xFF}"
        )


@dataclass
class ExternalDomain:
    """A contact-hosting domain on the outside internet."""

    domain: str
    ip: str
    host: RemoteMailHost
    publishes_spf: bool


@dataclass
class NewsletterSource:
    """A bulk sender of solicited-ish newsletters (Fig. 6's high
    sender-similarity clusters)."""

    source_id: str
    domain: str
    ip: str
    senders: list[str]
    period_days: float
    phase_days: float
    #: Probability the operator answers a delivered challenge.
    solve_prob: float
    #: (company_id, full user address) pairs.
    subscribers: list[tuple[str, str]] = field(default_factory=list)
    issues_sent: int = 0


@dataclass
class MarketingSource:
    """A bulk marketing sender the recipients never subscribed to.

    These are the paper's high-sender-similarity Fig. 6 clusters: blasts
    with one fixed subject, sent from a handful of near-identical addresses
    (``dept-x.p@scn-1.com``) at a real, well-configured mail operation —
    so their messages survive the auxiliary filters, pile up in gray
    spools, and (for the sources whose operators answer challenges) show
    solve rates as high as 97 %.
    """

    source_id: str
    domain: str
    ip: str
    senders: list[str]
    period_days: float
    phase_days: float
    #: Probability the operator answers a delivered challenge (0 for most).
    solve_prob: float
    #: Fraction of every company's users each blast targets.
    coverage: float
    blasts_sent: int = 0


@dataclass
class UserProfile:
    """Workload parameters of one protected user."""

    local: str
    address: str
    #: Whitelist additions per day (drives Fig. 9 churn).
    sociality: float
    contacts: list[str]
    nuisance_senders: list[str]


@dataclass
class Company:
    """One protected company plus its workload parameters."""

    config: CompanyConfig
    users: list[UserProfile]
    spam_multiplier: float
    legit_multiplier: float
    trap_affinity: float

    @property
    def company_id(self) -> str:
        return self.config.company_id

    @property
    def n_users(self) -> int:
        return len(self.users)


@dataclass
class World:
    """Everything static about the simulated deployment."""

    scale: ScaleConfig
    calibration: Calibration
    registry: DnsRegistry
    resolver: Resolver
    internet: Internet
    services: dict[str, DnsblService]
    trap_directory: TrapDirectory
    companies: list[Company]
    external_domains: list[ExternalDomain]
    newsletter_sources: list[NewsletterSource]
    marketing_sources: list[MarketingSource]
    contact_pool: list[str]
    innocent_pool: list[str]
    dead_domains: list[str]
    unresolvable_domains: list[str]
    spammer_senders: list[str]
    trap_addresses: list[str]
    forwarder_ips: list[str]
    snowshoe_ips: list[str]
    _ip_allocator: IpAllocator
    _ext_by_domain: dict[str, ExternalDomain]
    #: Memoised spoofed-sender mixes keyed by trap affinity: ``(class
    #: names, cumulative shares)`` ready for bisection. One company's
    #: affinity is fixed for the whole run, so the mix is, too.
    _spoof_sender_cum: dict = field(default_factory=dict)

    def spoof_sender_cum(self, trap_affinity: float) -> tuple:
        """``(class_names, cumulative_shares)`` of the spoofed-sender mix.

        A cached, bisect-ready form of ``calibration.spoof_mix`` — the
        mix used to be rebuilt (two dict comprehensions) for every single
        spam message.
        """
        cached = self._spoof_sender_cum.get(trap_affinity)
        if cached is None:
            mix = self.calibration.spoof_mix(trap_affinity)
            names = list(mix)
            cum = list(accumulate(mix.values()))
            cached = self._spoof_sender_cum[trap_affinity] = (names, cum)
        return cached

    def install_fault_plan(self, plan) -> None:
        """Wire a :class:`~repro.net.faults.FaultPlan` through the substrate.

        Attaches the plan to the resolver (DNS episodes), the router and
        every remote host — current and future (weather, greylisting) —
        and configures each DNSBL operator's listing/delisting lag.
        """
        self.resolver.fault_plan = plan
        self.internet.install_fault_plan(plan)
        for name, service in self.services.items():
            listing_lag, delisting_lag = plan.dnsbl_lag_for(name)
            service.listing_lag = listing_lag
            service.delisting_lag = delisting_lag

    # -- sampling helpers used by the trace generator -------------------

    def sample_nonexistent_sender(self, rng: random.Random) -> str:
        """A syntactically fine address at a real domain with no mailbox."""
        domain = rng.choice(self.external_domains).domain
        local = "x" + format(rng.getrandbits(48), "012x")
        return f"{local}@{domain}"

    def sample_dead_domain_sender(self, rng: random.Random) -> str:
        local = naming.make_person_local(rng)
        return f"{local}@{rng.choice(self.dead_domains)}"

    def sample_innocent_sender(self, rng: random.Random) -> str:
        return rng.choice(self.innocent_pool)

    def sample_trap_sender(self, rng: random.Random) -> str:
        return rng.choice(self.trap_addresses)

    def sample_spammer_sender(self, rng: random.Random) -> str:
        return rng.choice(self.spammer_senders)

    def sample_unresolvable_sender(self, rng: random.Random) -> str:
        local = naming.make_person_local(rng)
        return f"{local}@{rng.choice(self.unresolvable_domains)}"

    def create_new_contact(self, rng: random.Random) -> tuple[str, str]:
        """Create a brand-new external person (address, client_ip) whose
        mailbox really exists, so the challenge can reach them."""
        ext = rng.choice(self.external_domains)
        local = naming.make_person_local(rng) + format(rng.getrandbits(24), "06x")
        ext.host.add_mailbox(local)
        return f"{local}@{ext.domain}", ext.ip

    def client_ip_for_address(self, address: str) -> Optional[str]:
        """The server IP a legitimate owner of *address* would send from."""
        domain = address.rsplit("@", 1)[-1].lower()
        ext = self._ext_by_domain.get(domain)
        if ext is not None:
            return ext.ip
        return self.server_ip_of(domain)

    def server_ip_of(self, domain: str) -> Optional[str]:
        """The registered A record of *domain*, if any."""
        records = self.registry.lookup(domain, DnsRegistry.A)
        return records[0] if records else None

    def create_bot_ips(
        self,
        count: int,
        rng: random.Random,
        listed_duration: float,
        now: float,
    ) -> list[str]:
        """Allocate botnet member IPs for a campaign.

        Each bot gets a PTR record with probability ``bot_ptr_prob`` (the
        reverse-DNS filter keys on this) and is pre-listed on the product's
        RBL with probability ``bot_listed_prob`` — real botnet IPs hit spam
        traps worldwide long before they hit our companies.
        """
        cal = self.calibration
        random = rng.random
        allocate = self._ip_allocator.allocate
        register_ptr = self.registry.register_client_ptr
        ptr_prob = cal.bot_ptr_prob
        # One rng draw per (bot, service) pair, in the original order; the
        # passing IPs are collected per service and listed in one bulk call
        # after the loop. force_list draws no randomness and nothing in
        # this loop reads blacklist state, so deferring the listings is
        # state-identical to listing each bot as its roll passes.
        listings = [
            (coverage, self.services[service_name], [])
            for service_name, coverage in cal.bot_listing_probs
        ]
        ips = []
        for _ in range(count):
            ip = allocate()
            if random() < ptr_prob:
                register_ptr(
                    ip, f"host-{ip.replace('.', '-')}.dynamic.example"
                )
            for coverage, _service, listed in listings:
                if random() < coverage:
                    listed.append(ip)
            ips.append(ip)
        for _coverage, service, listed in listings:
            if listed:
                service.force_list_many(listed, now, listed_duration)
        return ips

    def spf_domains_published(self) -> int:
        """How many external domains publish SPF (diagnostics)."""
        return sum(1 for d in self.external_domains if d.publishes_spf)


def build_world(
    scale: ScaleConfig,
    calibration: Calibration,
    streams: RngStreams,
    filters_template: "FilterSettings" = None,
    config_overrides: Optional[dict] = None,
) -> World:
    """Construct the full static world for one simulation run.

    *filters_template*, when given, overrides every company's auxiliary
    filter configuration — the hook used by ablation studies (e.g. running
    the deployment without the RBL filter, or with SPF enforced inline).
    """
    rng = streams.stream("world")
    registry = DnsRegistry()
    resolver = Resolver(registry)
    internet = Internet(resolver)
    ips = IpAllocator()

    services = _build_services(scale)
    trap_directory, trap_addresses = _build_traps(
        scale, calibration, services, registry, internet, ips, rng
    )
    external_domains, ext_by_domain = _build_external_domains(
        scale, calibration, services, registry, internet, ips, rng
    )
    contact_pool = _populate_contacts(scale, external_domains, rng)
    innocent_pool = _populate_innocents(scale, external_domains, rng)
    dead_domains = _build_dead_domains(scale, calibration, registry, ips, rng)
    unresolvable_domains = [
        naming.make_domain(rng, suffix=f"u{i}")
        for i in range(scale.unresolvable_domains)
    ]
    spammer_senders = _build_spammer_domains(
        scale, calibration, registry, internet, ips, rng
    )
    forwarder_ips = _build_forwarders(registry, ips, rng)
    snowshoe_ips = _build_snowshoe_ips(registry, ips, rng)
    nuisance_pool = _build_nuisance_pool(scale, registry, internet, ips, rng)
    companies = _build_companies(
        scale,
        calibration,
        registry,
        ips,
        rng,
        contact_pool,
        nuisance_pool,
        external_domains,
        filters_template,
        config_overrides,
    )
    newsletter_sources = _build_newsletters(
        scale, calibration, registry, internet, ips, rng, companies
    )
    marketing_sources = _build_marketing(
        scale, calibration, registry, internet, ips, rng
    )

    return World(
        scale=scale,
        calibration=calibration,
        registry=registry,
        resolver=resolver,
        internet=internet,
        services=services,
        trap_directory=trap_directory,
        companies=companies,
        external_domains=external_domains,
        newsletter_sources=newsletter_sources,
        marketing_sources=marketing_sources,
        contact_pool=contact_pool,
        innocent_pool=innocent_pool,
        dead_domains=dead_domains,
        unresolvable_domains=unresolvable_domains,
        spammer_senders=spammer_senders,
        trap_addresses=trap_addresses,
        forwarder_ips=forwarder_ips,
        snowshoe_ips=snowshoe_ips,
        _ip_allocator=ips,
        _ext_by_domain=ext_by_domain,
    )


# ----------------------------------------------------------------------
# build steps
# ----------------------------------------------------------------------


def _build_services(scale: ScaleConfig) -> dict[str, DnsblService]:
    """The eight DNSBL operators, policies scaled with traffic volume.

    Thresholds shrink with the volume scale (and floor at one hit); to keep
    the expected listed-time of a lightly-hitting server roughly invariant
    under that flooring, listing durations shrink with the square root of
    the same factor.
    """
    duration_scale = math.sqrt(scale.dnsbl_threshold_scale)
    services = {}
    for name, policy in DEFAULT_SERVICE_POLICIES.items():
        scaled = ListingPolicy(
            threshold=max(1, round(policy.threshold * scale.dnsbl_threshold_scale)),
            window=policy.window,
            base_duration=policy.base_duration * duration_scale,
            escalation=policy.escalation,
            max_duration=policy.max_duration * duration_scale,
        )
        services[name] = DnsblService(name, scaled)
    return services


class TrapReporter:
    """Delivered-hook of a spam-trap host: report the sending IP to the
    trap's DNSBL operator. A callable class (not a closure) so trap hosts
    stay picklable for simulation checkpoints."""

    __slots__ = ("service",)

    def __init__(self, service: DnsblService) -> None:
        self.service = service

    def __call__(self, envelope, now: float) -> None:
        self.service.record_trap_hit(envelope.client_ip, now)


def _build_traps(
    scale: ScaleConfig,
    calibration: Calibration,
    services: dict[str, DnsblService],
    registry: DnsRegistry,
    internet: Internet,
    ips: IpAllocator,
    rng: random.Random,
) -> tuple[TrapDirectory, list[str]]:
    directory = TrapDirectory()
    all_traps: list[str] = []
    for service in services.values():
        domains = []
        for i in range(scale.trap_domains_per_service):
            domain = naming.make_domain(rng, suffix=f"t{i}")
            ip = ips.allocate()
            registry.register_mail_domain(
                domain,
                ip,
                spf=(
                    f"v=spf1 ip4:{ip} -all"
                    if rng.random() < calibration.trap_domain_spf_prob
                    else None
                ),
            )
            # Trap hosts silently accept everything and report the sender.
            host = RemoteMailHost(
                domain,
                ip,
                catch_all=True,
                on_delivered=TrapReporter(service),
            )
            internet.register_host(host)
            domains.append(domain)
        created = directory.create_traps(
            service.name, domains, scale.traps_per_domain, rng
        )
        all_traps.extend(created)
    return directory, all_traps


def _build_external_domains(
    scale: ScaleConfig,
    calibration: Calibration,
    services: dict[str, DnsblService],
    registry: DnsRegistry,
    internet: Internet,
    ips: IpAllocator,
    rng: random.Random,
) -> tuple[list[ExternalDomain], dict[str, ExternalDomain]]:
    service_list = list(services.values())
    domains: list[ExternalDomain] = []
    by_domain: dict[str, ExternalDomain] = {}
    for i in range(scale.ext_domains):
        domain = naming.make_domain(rng, suffix=f"e{i}")
        ip = ips.allocate()
        publishes_spf = rng.random() < calibration.ext_domain_spf_prob
        registry.register_mail_domain(
            domain, ip, spf=f"v=spf1 ip4:{ip} -all" if publishes_spf else None
        )
        # ~30 % of receiving servers consult 1–2 public DNSBLs, which is
        # how a listed challenge server learns about its listing (Fig. 11).
        subscribed = (
            rng.sample(service_list, rng.randint(1, 2))
            if rng.random() < 0.30
            else ()
        )
        host = RemoteMailHost(
            domain,
            ip,
            greylisting=rng.random() < calibration.ext_domain_greylist_prob,
            dnsbl_services=subscribed,
        )
        internet.register_host(host)
        ext = ExternalDomain(domain, ip, host, publishes_spf)
        domains.append(ext)
        by_domain[domain] = ext
    return domains, by_domain


def _populate_contacts(
    scale: ScaleConfig, external_domains: list[ExternalDomain], rng: random.Random
) -> list[str]:
    pool_size = max(scale.total_users * 25, 500)
    pool = []
    for _ in range(pool_size):
        ext = rng.choice(external_domains)
        local = naming.make_person_local(rng) + format(rng.getrandbits(20), "05x")
        ext.host.add_mailbox(local)
        pool.append(f"{local}@{ext.domain}")
    return pool


def _populate_innocents(
    scale: ScaleConfig, external_domains: list[ExternalDomain], rng: random.Random
) -> list[str]:
    pool = []
    for _ in range(scale.innocent_pool_size):
        ext = rng.choice(external_domains)
        local = naming.make_person_local(rng) + format(rng.getrandbits(20), "05x")
        ext.host.add_mailbox(local)
        pool.append(f"{local}@{ext.domain}")
    return pool


def _build_dead_domains(
    scale: ScaleConfig,
    calibration: Calibration,
    registry: DnsRegistry,
    ips: IpAllocator,
    rng: random.Random,
) -> list[str]:
    """Domains that resolve in DNS but whose mail server never answers."""
    domains = []
    for i in range(scale.dead_domains):
        domain = naming.make_domain(rng, suffix=f"d{i}")
        ip = ips.allocate()
        registry.register_mail_domain(
            domain,
            ip,
            spf=(
                f"v=spf1 ip4:{ip} -all"
                if rng.random() < calibration.dead_domain_spf_prob
                else None
            ),
        )
        # No Internet host registered: connections fail, retries expire.
        domains.append(domain)
    return domains


def _build_spammer_domains(
    scale: ScaleConfig,
    calibration: Calibration,
    registry: DnsRegistry,
    internet: Internet,
    ips: IpAllocator,
    rng: random.Random,
) -> list[str]:
    """Bulk-mailer domains whose sender addresses actually work (the
    'real' spoof class: challenges get delivered and ignored)."""
    senders = []
    n_domains = max(6, scale.ext_domains // 12)
    for i in range(n_domains):
        domain = naming.make_domain(rng, suffix=f"s{i}")
        ip = ips.allocate()
        registry.register_mail_domain(
            domain,
            ip,
            spf=(
                "v=spf1 +all"
                if rng.random() < calibration.spammer_domain_spf_prob
                else None
            ),
        )
        internet.register_host(RemoteMailHost(domain, ip, catch_all=True))
        for _ in range(rng.randint(2, 6)):
            senders.append(f"{naming.make_person_local(rng)}@{domain}")
    return senders


def _build_snowshoe_ips(
    registry: DnsRegistry, ips: IpAllocator, rng: random.Random
) -> list[str]:
    """Relay-abusing bulk hosts: clean PTR records, not on blacklists."""
    pool = []
    for i in range(24):
        ip = ips.allocate()
        registry.register_client_ptr(ip, f"mta{i}.bulk-route.example")
        pool.append(ip)
    return pool


def _build_forwarders(
    registry: DnsRegistry, ips: IpAllocator, rng: random.Random
) -> list[str]:
    """Webmail/forwarding gateways legit users occasionally send through:
    they have PTR records (pass reverse-DNS) but are outside any SPF."""
    forwarders = []
    for i in range(8):
        ip = ips.allocate()
        registry.register_client_ptr(ip, f"out{i}.webmail-gateway.example")
        forwarders.append(ip)
    return forwarders


def _build_nuisance_pool(
    scale: ScaleConfig,
    registry: DnsRegistry,
    internet: Internet,
    ips: IpAllocator,
    rng: random.Random,
) -> list[str]:
    """Persistent marketing senders users have personally blacklisted."""
    pool = []
    n_domains = max(4, scale.ext_domains // 20)
    for i in range(n_domains):
        domain = naming.make_domain(rng, suffix=f"m{i}")
        ip = ips.allocate()
        registry.register_mail_domain(domain, ip)
        internet.register_host(RemoteMailHost(domain, ip, catch_all=True))
        for _ in range(6):
            pool.append(f"promo-{rng.randint(100, 999)}@{domain}")
    return pool


def _company_sizes(
    scale: ScaleConfig, rng: random.Random
) -> list[int]:
    """Split ``total_users`` across companies log-normally: most companies
    small, a few large (Fig. 5's users histogram)."""
    weights = [math.exp(rng.gauss(0.0, 1.0)) for _ in range(scale.n_companies)]
    total_weight = sum(weights)
    sizes = [
        max(3, round(scale.total_users * w / total_weight)) for w in weights
    ]
    return sizes


def _build_companies(
    scale: ScaleConfig,
    calibration: Calibration,
    registry: DnsRegistry,
    ips: IpAllocator,
    rng: random.Random,
    contact_pool: list[str],
    nuisance_pool: list[str],
    external_domains: list[ExternalDomain],
    filters_template: "FilterSettings" = None,
    config_overrides: Optional[dict] = None,
) -> list[Company]:
    sizes = _company_sizes(scale, rng)
    spam_multipliers = [
        math.exp(
            rng.gauss(
                -calibration.company_spam_sigma**2 / 2,
                calibration.company_spam_sigma,
            )
        )
        for _ in range(scale.n_companies)
    ]
    # Legit volume couples to spam volume (both scale with how widely a
    # company's addresses circulate), with residual per-company noise.
    legit_multipliers = [
        spam_multipliers[i] ** calibration.legit_spam_coupling
        * math.exp(
            rng.gauss(
                -calibration.company_legit_sigma**2 / 2,
                calibration.company_legit_sigma,
            )
        )
        for i in range(scale.n_companies)
    ]
    # Normalise both multiplier sets to a volume-weighted mean of one:
    # the heavy-tailed draws keep their cross-company spread (Fig. 5),
    # but the deployment-wide aggregates stop depending on tail luck.
    _normalise_weighted(spam_multipliers, sizes)
    _normalise_weighted(legit_multipliers, sizes)
    # Trap-affinity assignment: a handful of "dirty" companies whose
    # harvested-address exposure is pathological. The paper observed that
    # the top-3 challenge senders were never listed, so dirty companies are
    # drawn from outside the heaviest spam receivers (volume and
    # list-quality exposure are unrelated in practice, §5.1).
    # Dirty-company count scales with the deployment (paper: 4 of 47).
    dirty_count = min(
        calibration.dirty_companies,
        max(1, round(scale.n_companies * calibration.dirty_companies / 47)),
    )
    # Rank by expected *challenge* volume: open relays reflect roughly
    # 2-3x more challenges per protected user than closed installations.
    eligible = sorted(
        range(scale.n_companies),
        key=lambda i: (
            sizes[i]
            * spam_multipliers[i]
            * (2.5 if i < scale.open_relays else 1.0)
        ),
    )
    keep = max(dirty_count, (3 * len(eligible)) // 5)
    eligible = eligible[:keep]
    dirty_indices = set(rng.sample(eligible, min(dirty_count, len(eligible))))
    dirty_values = list(calibration.trap_affinity_dirty)

    companies = []
    for index in range(scale.n_companies):
        company_id = f"c{index:02d}"
        domain = naming.make_domain(rng, suffix=f"corp{index}")
        mta_in_ip = ips.allocate()
        mta_out_ip = ips.allocate()
        dual = index % 3 == 0  # one third run a dedicated challenge MTA
        challenge_ip = ips.allocate() if dual else mta_out_ip
        registry.register_mail_domain(domain, mta_in_ip)
        registry.register_client_ptr(mta_out_ip, f"out.{domain}")
        if dual:
            registry.register_client_ptr(challenge_ip, f"challenge.{domain}")

        open_relay = index < scale.open_relays
        relay_domains = tuple(
            naming.make_domain(rng, suffix=f"r{index}{j}")
            for j in range(rng.randint(1, 3))
        ) if open_relay else ()
        for relay_domain in relay_domains:
            registry.register_mail_domain(relay_domain, mta_in_ip)

        n_users = sizes[index]
        locals_ = [f"user{j:03d}" for j in range(n_users)]
        users = []
        for local in locals_:
            n_contacts = rng.randint(*calibration.contacts_per_user)
            contacts = rng.sample(
                contact_pool, min(n_contacts, len(contact_pool))
            )
            n_nuisance = rng.randint(*calibration.nuisance_senders_per_user)
            nuisance = rng.sample(
                nuisance_pool, min(n_nuisance, len(nuisance_pool))
            )
            sociality = calibration.sociality_median * math.exp(
                rng.gauss(0.0, calibration.sociality_sigma)
            )
            users.append(
                UserProfile(
                    local=local,
                    address=f"{local}@{domain}",
                    sociality=sociality,
                    contacts=contacts,
                    nuisance_senders=nuisance,
                )
            )

        # Site-blocked senders live at real (resolvable) domains, so the
        # MTA's sender-rejected check — which runs after domain resolution
        # — is the one that fires for them.
        rejected = frozenset(
            f"blocked{k}@{rng.choice(external_domains).domain}"
            for k in range(3)
        )
        if index in dirty_indices and dirty_values:
            trap_affinity = dirty_values.pop(0)
        else:
            trap_affinity = rng.uniform(0.0, calibration.trap_affinity_clean_max)

        config = CompanyConfig(
            company_id=company_id,
            name=f"Company {index:02d}",
            domain=domain,
            users=tuple(locals_),
            mta_in_ip=mta_in_ip,
            mta_out_ip=mta_out_ip,
            challenge_ip=challenge_ip,
            relay_domains=relay_domains,
            rejected_senders=rejected,
            filters=(
                filters_template
                if filters_template is not None
                else FilterSettings(
                    antivirus_detection_rate=calibration.antivirus_detection_rate,
                    rbl_provider=_pick_rbl_provider(calibration, index),
                )
            ),
        )
        if config_overrides:
            config = dataclasses.replace(config, **config_overrides)
        companies.append(
            Company(
                config=config,
                users=users,
                spam_multiplier=spam_multipliers[index],
                legit_multiplier=legit_multipliers[index],
                trap_affinity=trap_affinity,
            )
        )
    return companies


def _normalise_weighted(multipliers: list, weights: list) -> None:
    """Rescale *multipliers* in place so sum(w*m) == sum(w)."""
    weighted = sum(w * m for w, m in zip(weights, multipliers))
    if weighted <= 0:
        return
    factor = sum(weights) / weighted
    for i in range(len(multipliers)):
        multipliers[i] *= factor


def _pick_rbl_provider(calibration: Calibration, index: int) -> str:
    """Assign the company's blacklist provider by market share.

    Deterministic round-robin over a weighted pattern, so the provider mix
    is balanced between open-relay and closed-relay installations (keeping
    the Fig. 3 open-vs-closed comparison free of provider noise).
    """
    pattern: list[str] = []
    for name, weight in calibration.rbl_provider_weights:
        pattern.extend([name] * max(1, round(weight * 20)))
    return pattern[index % len(pattern)]


def _build_newsletters(
    scale: ScaleConfig,
    calibration: Calibration,
    registry: DnsRegistry,
    internet: Internet,
    ips: IpAllocator,
    rng: random.Random,
    companies: list[Company],
) -> list[NewsletterSource]:
    n_sources = max(6, scale.total_users // 15)
    sources = []
    for i in range(n_sources):
        domain = f"scn-{i}.{rng.choice(('com', 'net'))}"
        ip = ips.allocate()
        registry.register_mail_domain(
            domain,
            ip,
            spf=(
                f"v=spf1 ip4:{ip} -all"
                if rng.random() < calibration.newsletter_spf_prob
                else None
            ),
        )
        internet.register_host(RemoteMailHost(domain, ip, catch_all=True))
        letter = "abcdefghijklmnopqrstuvwxyz"[i % 26]
        senders = [
            f"dept-{letter}.{p}@{domain}"
            for p in rng.sample("pqrstuvwxyz", rng.randint(3, 6))
        ]
        solves = rng.random() < calibration.newsletter_solver_share
        solve_prob = (
            rng.uniform(*calibration.newsletter_solve_range) if solves else 0.0
        )
        sources.append(
            NewsletterSource(
                source_id=f"nl-{i}",
                domain=domain,
                ip=ip,
                senders=senders,
                period_days=rng.uniform(5.0, 9.0),
                phase_days=rng.uniform(0.0, 9.0),
                solve_prob=solve_prob,
            )
        )
    # Subscribe users: ~ newsletter_rate × period subscriptions per user.
    for company in companies:
        for user in company.users:
            expected = calibration.newsletter_rate * 7.0
            n_subs = poisson(rng, expected)
            if n_subs <= 0:
                continue
            for source in rng.sample(sources, min(n_subs, len(sources))):
                source.subscribers.append((company.company_id, user.address))
    return sources


def _build_marketing(
    scale: ScaleConfig,
    calibration: Calibration,
    registry: DnsRegistry,
    internet: Internet,
    ips: IpAllocator,
    rng: random.Random,
) -> list[MarketingSource]:
    """Bulk marketing operations (Fig. 6's high sender-similarity clusters)."""
    n_sources = max(3, scale.total_users // 90)
    sources = []
    for i in range(n_sources):
        domain = f"scn-m{i}.{rng.choice(('com', 'net'))}"
        ip = ips.allocate()
        registry.register_mail_domain(
            domain,
            ip,
            spf=(
                f"v=spf1 ip4:{ip} -all"
                if rng.random() < calibration.newsletter_spf_prob
                else None
            ),
        )
        internet.register_host(RemoteMailHost(domain, ip, catch_all=True))
        letter = "abcdefghijklmnopqrstuvwxyz"[i % 26]
        senders = [
            f"dept-{letter}.{p}@{domain}"
            for p in rng.sample("pqrstuvwxyz", rng.randint(3, 5))
        ]
        solves = rng.random() < calibration.marketing_solver_share
        solve_prob = (
            rng.uniform(*calibration.marketing_solve_range) if solves else 0.0
        )
        sources.append(
            MarketingSource(
                source_id=f"mk-{i}",
                domain=domain,
                ip=ip,
                senders=senders,
                period_days=rng.uniform(*calibration.marketing_period_days),
                phase_days=rng.uniform(0.0, 8.0),
                solve_prob=solve_prob,
                coverage=rng.uniform(*calibration.marketing_coverage),
            )
        )
    return sources
