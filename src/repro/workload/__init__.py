"""Synthetic workload: the six-month email trace the paper could not share.

The real study measured 90.4 M messages flowing into 47 companies. Those
traces are proprietary, so this package generates a statistically equivalent
workload: a world of companies, users, contacts, newsletters, botnet spam
campaigns, spam traps and dead domains (:mod:`repro.workload.entities`),
sender/recipient behaviour models (:mod:`repro.workload.behavior`), and a
day-by-day trace generator (:mod:`repro.workload.generator`).

Every tunable lives in :mod:`repro.workload.calibration`, annotated with the
published figure it is anchored to. The analyses never read these constants
— they re-measure everything from simulation logs.
"""

from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.entities import World, build_world
from repro.workload.generator import TraceGenerator
from repro.workload.scale import ScaleConfig, get_preset

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "World",
    "build_world",
    "TraceGenerator",
    "ScaleConfig",
    "get_preset",
]
