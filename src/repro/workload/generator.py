"""Day-by-day trace generation.

``TraceGenerator.start`` arms one planning event per simulated day; each
planning event draws that day's traffic for every company — whitelisted
contact mail, blacklisted nuisance mail, first-contact legitimate mail,
newsletter issues, spam campaign volume (valid users, dictionary attacks,
relay probes, foreign-recipient probes), outbound user mail, and manual
whitelist imports — and schedules the individual messages at diurnally
distributed times.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Mapping

from repro.core.engine import CompanyInstallation
from repro.core.message import (
    EmailMessage,
    MessageKind,
    SenderClass,
    make_message,
)
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams, poisson
from repro.util.simtime import DAY, HOUR, is_weekend
from repro.workload import naming
from repro.workload.entities import Company, World
from repro.workload.sizes import SizeModel
from repro.workload.spamcampaign import Campaign, CampaignFactory


class TraceGenerator:
    """Generates the whole deployment's inbound/outbound traffic."""

    def __init__(
        self,
        world: World,
        simulator: Simulator,
        installations: Mapping[str, CompanyInstallation],
        streams: RngStreams,
    ) -> None:
        self.world = world
        self.calibration = world.calibration
        self.simulator = simulator
        self.installations = dict(installations)
        self.rng = streams.stream("trace")
        self.size_model = SizeModel(self.calibration, streams.stream("sizes"))
        self.campaign_factory = CampaignFactory(
            self.calibration, streams.stream("campaigns")
        )
        self.active_campaigns: list[Campaign] = []
        self._campaign_weights: list[float] = []
        self._legit_hour_cum = _cumulative(self.calibration.legit_hour_weights)
        self._spam_hour_cum = _cumulative(self.calibration.spam_hour_weights)
        self._hours = list(range(24))
        self._rejected_by_company = {
            company.company_id: sorted(company.config.rejected_senders)
            for company in world.companies
        }
        self.messages_generated = 0

    # -- public API -------------------------------------------------------

    def start(self, n_days: int) -> None:
        """Arm one planning event per day, plus a warm campaign pool.

        The warm start spawns roughly one mean-duration's worth of
        campaigns at t=0 so day 0 already sees steady-state spam diversity.
        """
        mean_duration = sum(self.calibration.campaign_duration_days) / 2.0
        warm = round(self._campaign_rate() * mean_duration)
        for _ in range(max(1, warm)):
            self.active_campaigns.append(
                self.campaign_factory.spawn(self.world, self.simulator.now)
            )
        for day in range(n_days):
            self.simulator.schedule(
                day * DAY, partial(self._plan_day, day), label=f"plan-day-{day}"
            )

    # -- per-day planning -------------------------------------------------

    def _campaign_rate(self) -> float:
        return (
            self.calibration.campaign_arrivals_per_day
            * self.world.scale.campaign_rate_scale
        )

    def _plan_day(self, day: int) -> None:
        now = self.simulator.now
        self.active_campaigns = [
            c for c in self.active_campaigns if c.end > now
        ]
        for _ in range(poisson(self.rng, self._campaign_rate())):
            self.active_campaigns.append(
                self.campaign_factory.spawn(self.world, now)
            )
        self._campaign_weights = [c.intensity for c in self.active_campaigns]

        weekend = is_weekend(now)
        legit_factor = (
            self.calibration.legit_weekend_factor if weekend else 1.0
        )
        spam_factor = self.calibration.spam_weekend_factor if weekend else 1.0

        for company in self.world.companies:
            installation = self.installations[company.company_id]
            self._plan_user_mail(company, installation, day, legit_factor)
            self._plan_spam(company, installation, day, spam_factor)
        self._plan_newsletters(day)
        self._plan_marketing(day)

    # -- legitimate / user-driven traffic ----------------------------------

    def _plan_user_mail(
        self,
        company: Company,
        installation: CompanyInstallation,
        day: int,
        legit_factor: float,
    ) -> None:
        cal = self.calibration
        rng = self.rng
        volume = self.world.scale.volume_scale
        for user in company.users:
            white = poisson(
                rng,
                cal.white_rate * company.legit_multiplier * volume * legit_factor,
            )
            for _ in range(white):
                self._schedule_contact_mail(installation, user, day)

            black = poisson(rng, cal.black_rate * volume)
            for _ in range(black):
                self._schedule_nuisance_mail(installation, user, day)

            dsns = poisson(rng, cal.dsn_rate * volume * legit_factor)
            for _ in range(dsns):
                self._schedule_dsn(installation, user, day)

            # First-contact inbound mail scales with volume like all other
            # inbound traffic...
            new_contacts = poisson(
                rng,
                cal.sociality_new_contact_factor
                * user.sociality
                * volume
                * legit_factor,
            )
            for _ in range(new_contacts):
                self._schedule_new_contact_mail(installation, user, day)

            # ...but the purely user-driven churn streams (outbound mail to
            # new addresses, manual imports) run at paper rates so Fig. 9's
            # absolute per-60-day histogram stays comparable at any scale.
            outbound_new = poisson(
                rng, cal.sociality_outbound_share * user.sociality * legit_factor
            )
            for _ in range(outbound_new):
                address, _ip = self.world.create_new_contact(rng)
                self._schedule_outbound(installation, user, address, day)

            outbound_known = poisson(
                rng, cal.outbound_known_rate * volume * legit_factor
            )
            for _ in range(outbound_known):
                self._schedule_outbound(
                    installation, user, rng.choice(user.contacts), day
                )

            manual = poisson(
                rng, cal.sociality_manual_share * user.sociality * legit_factor
            )
            for _ in range(manual):
                address, _ip = self.world.create_new_contact(rng)
                self.simulator.schedule(
                    self._day_time(day, legit=True),
                    partial(installation.manual_whitelist, user.address, address),
                )

    def _schedule_contact_mail(self, installation, user, day: int) -> None:
        sender = self.rng.choice(user.contacts)
        self._schedule_legit_message(installation, user, sender, day)

    def _schedule_new_contact_mail(self, installation, user, day: int) -> None:
        sender, _ip = self.world.create_new_contact(self.rng)
        self._schedule_legit_message(installation, user, sender, day)

    def _schedule_legit_message(
        self, installation, user, sender: str, day: int
    ) -> None:
        t = self._day_time(day, legit=True)
        client_ip = self.world.client_ip_for_address(sender)
        if (
            client_ip is None
            or self.rng.random() < self.calibration.legit_spf_misroute_prob
        ):
            client_ip = self.rng.choice(self.world.forwarder_ips)
        message = make_message(
            t,
            sender,
            user.address,
            subject=naming.make_short_subject(self.rng),
            size=self.size_model.legit(),
            client_ip=client_ip,
            kind=MessageKind.LEGIT,
            sender_class=SenderClass.REAL,
        )
        self._schedule_inbound(installation, message)

    def _schedule_dsn(self, installation, user, day: int) -> None:
        """A bounce of the user's own misaddressed outbound mail: null
        reverse-path, sent by some remote MTA."""
        ext = self.rng.choice(self.world.external_domains)
        t = self._day_time(day, legit=True)
        message = make_message(
            t,
            "",
            user.address,
            subject="undelivered mail returned to sender",
            size=self.size_model.legit() // 4 + 500,
            client_ip=ext.ip,
            kind=MessageKind.LEGIT,
            sender_class=SenderClass.REAL,
            campaign_id="dsn",
        )
        self._schedule_inbound(installation, message)

    def _schedule_nuisance_mail(self, installation, user, day: int) -> None:
        sender = self.rng.choice(user.nuisance_senders)
        t = self._day_time(day, legit=False)
        client_ip = self.world.client_ip_for_address(sender) or "192.0.2.1"
        message = make_message(
            t,
            sender,
            user.address,
            subject=naming.make_short_subject(self.rng),
            size=self.size_model.spam(),
            client_ip=client_ip,
            kind=MessageKind.SPAM,
            sender_class=SenderClass.REAL,
        )
        self._schedule_inbound(installation, message)

    def _schedule_outbound(
        self, installation, user, rcpt: str, day: int
    ) -> None:
        self.simulator.schedule(
            self._day_time(day, legit=True),
            partial(
                installation.send_user_mail,
                user.local,
                rcpt,
                self.size_model.legit(),
            ),
        )

    # -- newsletters ---------------------------------------------------------

    def _plan_newsletters(self, day: int) -> None:
        for source in self.world.newsletter_sources:
            day_in_cycle = (day - source.phase_days) % source.period_days
            if not 0 <= day_in_cycle < 1:
                continue
            source.issues_sent += 1
            subject = naming.make_newsletter_subject(
                self.rng, source.issues_sent
            )
            sender = self.rng.choice(source.senders)
            size = self.size_model.newsletter()
            volume = self.world.scale.volume_scale
            for company_id, subscriber in source.subscribers:
                installation = self.installations.get(company_id)
                if installation is None:
                    continue
                # Newsletter volume scales with the preset like every other
                # inbound stream.
                if self.rng.random() >= volume:
                    continue
                t = self._day_time(day, legit=True)
                message = make_message(
                    t,
                    sender,
                    subscriber,
                    subject=subject,
                    size=size,
                    client_ip=source.ip,
                    kind=MessageKind.NEWSLETTER,
                    sender_class=SenderClass.REAL,
                    campaign_id=source.source_id,
                )
                self._schedule_inbound(installation, message)

    def _plan_marketing(self, day: int) -> None:
        """Unsolicited marketing blasts: one fixed long subject per blast,
        near-identical senders, real well-configured servers (so the
        messages survive the filters and pile up in gray spools)."""
        volume = self.world.scale.volume_scale
        for source in self.world.marketing_sources:
            day_in_cycle = (day - source.phase_days) % source.period_days
            if not 0 <= day_in_cycle < 1:
                continue
            source.blasts_sent += 1
            subject = naming.make_campaign_subject(self.rng, 11)
            sender = self.rng.choice(source.senders)
            size = self.size_model.newsletter()
            for company in self.world.companies:
                installation = self.installations[company.company_id]
                expected = source.coverage * company.n_users * volume
                count = poisson(self.rng, expected)
                targets = self.rng.sample(
                    company.users, min(count, company.n_users)
                )
                for user in targets:
                    t = self._day_time(day, legit=True)
                    message = make_message(
                        t,
                        sender,
                        user.address,
                        subject=subject,
                        size=size,
                        client_ip=source.ip,
                        kind=MessageKind.NEWSLETTER,
                        sender_class=SenderClass.REAL,
                        campaign_id=source.source_id,
                    )
                    self._schedule_inbound(installation, message)

    # -- spam ---------------------------------------------------------------

    def _plan_spam(
        self,
        company: Company,
        installation: CompanyInstallation,
        day: int,
        spam_factor: float,
    ) -> None:
        if not self.active_campaigns:
            return
        cal = self.calibration
        rng = self.rng
        base = (
            cal.spam_valid_rate
            * company.n_users
            * company.spam_multiplier
            * self.world.scale.volume_scale
            * spam_factor
        )
        groups = [
            ("valid", poisson(rng, base)),
            ("unknown", poisson(rng, base * cal.spam_unknown_recipient_factor)),
            ("foreign", poisson(rng, base * cal.spam_foreign_factor)),
        ]
        if company.config.open_relay:
            groups.append(
                ("relay", poisson(rng, base * cal.relay_spam_factor))
            )
        for group, count in groups:
            for _ in range(count):
                self._schedule_spam(company, installation, day, group)

    def _schedule_spam(
        self,
        company: Company,
        installation: CompanyInstallation,
        day: int,
        group: str,
    ) -> None:
        rng = self.rng
        cal = self.calibration
        campaign = rng.choices(
            self.active_campaigns, weights=self._campaign_weights
        )[0]

        env_from, sender_class = self._spam_sender(campaign, company, rng)
        env_to = self._spam_recipient(company, group, rng, campaign)
        # Relayed spam partly arrives via snowshoe bulk hosts whose clean
        # PTR/blacklist profile slips past the filters (the open relays'
        # extra challenges, Fig. 3).
        if group == "relay" and rng.random() < cal.relay_snowshoe_frac:
            client_ip = rng.choice(self.world.snowshoe_ips)
        else:
            client_ip = campaign.sample_bot(rng)
        message = make_message(
            self._day_time(day, legit=False),
            env_from,
            env_to,
            subject=campaign.subject,
            size=self.size_model.spam(),
            client_ip=client_ip,
            kind=MessageKind.SPAM,
            sender_class=sender_class,
            campaign_id=campaign.campaign_id,
            has_virus=rng.random() < campaign.virus_prob,
        )
        self._schedule_inbound(installation, message)

    def _spam_sender(
        self, campaign: Campaign, company: Company, rng: random.Random
    ) -> tuple[str, SenderClass]:
        cal = self.calibration
        roll = rng.random()
        if roll < cal.spam_malformed_sender_frac:
            return naming.make_malformed_address(rng), SenderClass.NONEXISTENT_MAILBOX
        roll -= cal.spam_malformed_sender_frac
        if roll < cal.spam_unresolvable_sender_frac:
            return (
                self.world.sample_unresolvable_sender(rng),
                SenderClass.NONEXISTENT_MAILBOX,
            )
        roll -= cal.spam_unresolvable_sender_frac
        rejected = self._rejected_by_company[company.company_id]
        if rejected and roll < cal.spam_rejected_sender_frac:
            return rng.choice(rejected), SenderClass.NONEXISTENT_MAILBOX
        return campaign.sample_sender(self.world, company, rng)

    def _spam_recipient(
        self,
        company: Company,
        group: str,
        rng: random.Random,
        campaign: Campaign,
    ) -> str:
        if group == "valid":
            return campaign.sample_target(company, rng).address
        if group == "unknown":
            local = "zz" + format(rng.getrandbits(40), "010x")
            return f"{local}@{company.config.domain}"
        if group == "relay":
            local = naming.make_person_local(rng)
            return f"{local}@{rng.choice(company.config.relay_domains)}"
        # "foreign": a relay probe for a domain this server does not serve.
        ext = rng.choice(self.world.external_domains)
        return f"{naming.make_person_local(rng)}@{ext.domain}"

    # -- shared helpers --------------------------------------------------------

    def _schedule_inbound(
        self, installation: CompanyInstallation, message: EmailMessage
    ) -> None:
        self.messages_generated += 1
        self.simulator.schedule(
            message.t, partial(installation.handle_inbound, message)
        )

    def _day_time(self, day: int, legit: bool) -> float:
        cum = self._legit_hour_cum if legit else self._spam_hour_cum
        hour = self.rng.choices(self._hours, cum_weights=cum)[0]
        return day * DAY + hour * HOUR + self.rng.random() * HOUR


def _cumulative(weights) -> list[float]:
    total = 0.0
    cum = []
    for w in weights:
        total += w
        cum.append(total)
    return cum
