"""Day-by-day trace generation.

``TraceGenerator.start`` arms one planning event per simulated day; each
planning event draws that day's traffic for every company — whitelisted
contact mail, blacklisted nuisance mail, first-contact legitimate mail,
newsletter issues, spam campaign volume (valid users, dictionary attacks,
relay probes, foreign-recipient probes), outbound user mail, and manual
whitelist imports — and schedules the individual messages at diurnally
distributed times.

Messages are built **columnar** (§"Batched data plane" in DESIGN.md): a
planning event stages one row tuple per message into a
:class:`~repro.core.message.MessageBatch`, then finalizes the whole day
at once — id block allocation, a single stable sort by arrival time, bulk
materialization — and hands the day to the engine as one
:class:`~repro.sim.events.EventBatch` instead of one heap entry per
message. Every RNG draw happens in exactly the order the per-message
path used, stream by stream, so the batched build is bit-identical to
the old one (the goldens pin this). Size draws are the one reordering:
they move from "inside each message" to "one vectorized run per
homogeneous loop", which is invisible because sizes come from their own
isolated stream and the within-stream order is unchanged.
"""

from __future__ import annotations

import random
from bisect import bisect
from functools import partial
from itertools import accumulate
from typing import Mapping

from typing import Optional

from repro.core.engine import CompanyInstallation
from repro.core.message import (
    EmailMessage,
    MessageBatch,
    MessageKind,
    SenderClass,
    allocate_msg_id_block,
)
from repro.net.exchange import ShardContext
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams, poisson
from repro.util.simtime import DAY, HOUR, is_weekend
from repro.workload import naming
from repro.workload.entities import Company, World
from repro.workload.sizes import SizeModel
from repro.workload.spamcampaign import Campaign, CampaignFactory

_LEGIT = MessageKind.LEGIT
_NEWSLETTER = MessageKind.NEWSLETTER
_SPAM = MessageKind.SPAM
_REAL = SenderClass.REAL


class TraceGenerator:
    """Generates the whole deployment's inbound/outbound traffic."""

    def __init__(
        self,
        world: World,
        simulator: Simulator,
        installations: Mapping[str, CompanyInstallation],
        streams: RngStreams,
        batch_delivery: bool = True,
        shard: Optional[ShardContext] = None,
    ) -> None:
        self.world = world
        self.calibration = world.calibration
        self.simulator = simulator
        self.installations = dict(installations)
        #: One bound ``handle_inbound`` per installation, created once —
        #: attribute access would mint a fresh bound method per message,
        #: and batch grouping relies on handler identity.
        self._inbound = {
            company_id: installation.handle_inbound
            for company_id, installation in self.installations.items()
        }
        #: Sharded mode (DESIGN.md §12): *installations* covers only this
        #: shard's companies, but every company's draws are still consumed
        #: in the replicated order. ``_route`` maps each company to its
        #: local handler or, for remote companies, to the owning shard's
        #: index — staged rows carry that routing token instead of a
        #: callable, and dispatch turns remote rows into exchange-manifest
        #: entries rather than deliveries.
        self.shard = shard
        if shard is None:
            self._route = self._inbound
        else:
            self._route = {
                company.company_id: self._inbound.get(
                    company.company_id,
                    shard.shard_map.owner_of(company.company_id),
                )
                for company in world.companies
            }
        #: False = stage and sort days exactly the same way, but schedule
        #: each message as its own heap entry. Exists so tests can pin
        #: batched ≡ unbatched behaviour; not a production mode.
        self.batch_delivery = batch_delivery
        self.rng = streams.stream("trace")
        self.size_model = SizeModel(self.calibration, streams.stream("sizes"))
        self.campaign_factory = CampaignFactory(
            self.calibration, streams.stream("campaigns")
        )
        self.active_campaigns: list[Campaign] = []
        self._campaign_weights: list[float] = []
        self._campaign_cum: list[float] = []
        self._campaign_total = 0.0
        self._legit_hour_cum = _cumulative(self.calibration.legit_hour_weights)
        self._spam_hour_cum = _cumulative(self.calibration.spam_hour_weights)
        # random.choices(cum_weights=...) draws random() * (cum[-1] + 0.0);
        # the inlined bisect below must consume the identical value.
        self._legit_hour_total = self._legit_hour_cum[-1] + 0.0
        self._spam_hour_total = self._spam_hour_cum[-1] + 0.0
        self._rejected_by_company = {
            company.company_id: sorted(company.config.rejected_senders)
            for company in world.companies
        }
        self.messages_generated = 0
        # Per-day staging columns, rebound by _plan_day.
        self._rows: list = []
        self._handlers: list = []

    # -- public API -------------------------------------------------------

    def start(self, n_days: int) -> None:
        """Arm one planning event per day, plus a warm campaign pool.

        The warm start spawns roughly one mean-duration's worth of
        campaigns at t=0 so day 0 already sees steady-state spam diversity.
        """
        mean_duration = sum(self.calibration.campaign_duration_days) / 2.0
        warm = round(self._campaign_rate() * mean_duration)
        for _ in range(max(1, warm)):
            self.active_campaigns.append(
                self.campaign_factory.spawn(self.world, self.simulator.now)
            )
        for day in range(n_days):
            self.simulator.schedule(
                day * DAY, partial(self._plan_day, day), label=f"plan-day-{day}"
            )

    # -- per-day planning -------------------------------------------------

    def _campaign_rate(self) -> float:
        return (
            self.calibration.campaign_arrivals_per_day
            * self.world.scale.campaign_rate_scale
        )

    def _plan_day(self, day: int) -> None:
        now = self.simulator.now
        self.active_campaigns = [
            c for c in self.active_campaigns if c.end > now
        ]
        for _ in range(poisson(self.rng, self._campaign_rate())):
            self.active_campaigns.append(
                self.campaign_factory.spawn(self.world, now)
            )
        self._campaign_weights = [c.intensity for c in self.active_campaigns]
        # random.choices(weights=...) rebuilt this prefix sum per message;
        # the campaign mix is fixed for the day, so build it once.
        self._campaign_cum = list(accumulate(self._campaign_weights))
        self._campaign_total = (
            self._campaign_cum[-1] + 0.0 if self._campaign_cum else 0.0
        )

        weekend = is_weekend(now)
        legit_factor = (
            self.calibration.legit_weekend_factor if weekend else 1.0
        )
        spam_factor = self.calibration.spam_weekend_factor if weekend else 1.0

        batch = MessageBatch()
        self._rows = batch.rows
        self._handlers = batch.handlers
        for company in self.world.companies:
            installation = self.installations.get(company.company_id)
            self._plan_user_mail(company, installation, day, legit_factor)
            self._plan_spam(company, day, spam_factor)
        self._plan_newsletters(day)
        self._plan_marketing(day)
        self._dispatch_day(batch, day)

    def _dispatch_day(self, batch: MessageBatch, day: int) -> None:
        """Finalize the day's staged rows and hand them to the engine."""
        if self.shard is not None:
            self._dispatch_day_sharded(batch, day)
            return
        times, handlers, messages = batch.finalize()
        self._rows = []
        self._handlers = []
        if not messages:
            return
        self.messages_generated += len(messages)
        # One DNS-independent MTA sweep per installation (handler identity
        # groups messages by company).
        groups: dict = {}
        groups_get = groups.get
        for handler, message in zip(handlers, messages):
            group = groups_get(handler)
            if group is None:
                group = groups[handler] = []
            group.append(message)
        for handler, group in groups.items():
            handler.__self__.mta_in.precheck_batch(group)
        if self.batch_delivery:
            self.simulator.schedule_batch(
                times, handlers, messages, label=f"day-{day}-mail"
            )
        else:
            schedule = self.simulator.schedule
            for t, handler, message in zip(times, handlers, messages):
                schedule(t, partial(handler, message))

    def _dispatch_day_sharded(self, batch: MessageBatch, day: int) -> None:
        """Sharded finalize: replicate the id/sort bookkeeping of
        :meth:`MessageBatch.finalize` exactly, but materialize only the
        rows this shard owns. Every row — local or remote — is recorded in
        the day's exchange-manifest epoch in the same ``(t, msg_id)``
        order each peer shard computes, so the driver can prove the
        replicated traces agreed before merging stores."""
        shard = self.shard
        exchange = shard.exchange
        local_index = shard.index
        rows = batch.rows
        all_handlers = batch.handlers
        self._rows = []
        self._handlers = []
        n = len(rows)
        exchange.open_epoch(day)
        if n == 0:
            exchange.close_epoch()
            return
        # Ids are assigned by generation position before the sort — the
        # block covers *all* companies' rows so local ids match the
        # unsharded run's allocation bit-for-bit.
        first = allocate_msg_id_block(n)
        ts = [row[0] for row in rows]
        order = sorted(range(n), key=ts.__getitem__)
        # Append straight into the epoch's per-owner columns: this loop
        # walks every row of the replicated trace, so even one method
        # call per row is measurable at scale.
        cells = exchange.open_cells
        local_ts, local_ids = cells[local_index]
        times: list = []
        handlers: list = []
        messages: list = []
        for i in order:
            handler = all_handlers[i]
            t = ts[i]
            if type(handler) is int:  # remote company: owner shard index
                cell_ts, cell_ids = cells[handler]
                cell_ts.append(t)
                cell_ids.append(first + i)
            else:
                local_ts.append(t)
                local_ids.append(first + i)
                times.append(t)
                handlers.append(handler)
                messages.append(EmailMessage(first + i, *rows[i]))
        exchange.close_epoch()
        if not messages:
            return
        self.messages_generated += len(messages)
        groups: dict = {}
        groups_get = groups.get
        for handler, message in zip(handlers, messages):
            group = groups_get(handler)
            if group is None:
                group = groups[handler] = []
            group.append(message)
        for handler, group in groups.items():
            handler.__self__.mta_in.precheck_batch(group)
        if self.batch_delivery:
            self.simulator.schedule_batch(
                times, handlers, messages, label=f"day-{day}-mail"
            )
        else:
            schedule = self.simulator.schedule
            for t, handler, message in zip(times, handlers, messages):
                schedule(t, partial(handler, message))

    # -- legitimate / user-driven traffic ----------------------------------

    def _plan_user_mail(
        self,
        company: Company,
        installation: CompanyInstallation,
        day: int,
        legit_factor: float,
    ) -> None:
        cal = self.calibration
        rng = self.rng
        size_model = self.size_model
        volume = self.world.scale.volume_scale
        handler = self._route[company.company_id]
        white_rate = (
            cal.white_rate * company.legit_multiplier * volume * legit_factor
        )
        black_rate = cal.black_rate * volume
        dsn_rate = cal.dsn_rate * volume * legit_factor
        for user in company.users:
            white = poisson(rng, white_rate)
            if white:
                sizes = size_model.legit_batch(white)
                contacts = user.contacts
                for size in sizes:
                    self._stage_legit(
                        handler, user, rng.choice(contacts), day, size
                    )

            black = poisson(rng, black_rate)
            if black:
                sizes = size_model.spam_batch(black)
                nuisance = user.nuisance_senders
                for size in sizes:
                    self._stage_nuisance(
                        handler, user, rng.choice(nuisance), day, size
                    )

            dsns = poisson(rng, dsn_rate)
            if dsns:
                for size in size_model.legit_batch(dsns):
                    self._stage_dsn(handler, user, day, size)

            # First-contact inbound mail scales with volume like all other
            # inbound traffic...
            new_contacts = poisson(
                rng,
                cal.sociality_new_contact_factor
                * user.sociality
                * volume
                * legit_factor,
            )
            if new_contacts:
                for size in size_model.legit_batch(new_contacts):
                    sender, _ip = self.world.create_new_contact(rng)
                    self._stage_legit(handler, user, sender, day, size)

            # ...but the purely user-driven churn streams (outbound mail to
            # new addresses, manual imports) run at paper rates so Fig. 9's
            # absolute per-60-day histogram stays comparable at any scale.
            outbound_new = poisson(
                rng, cal.sociality_outbound_share * user.sociality * legit_factor
            )
            for _ in range(outbound_new):
                address, _ip = self.world.create_new_contact(rng)
                self._schedule_outbound(installation, user, address, day)

            outbound_known = poisson(
                rng, cal.outbound_known_rate * volume * legit_factor
            )
            for _ in range(outbound_known):
                self._schedule_outbound(
                    installation, user, rng.choice(user.contacts), day
                )

            manual = poisson(
                rng, cal.sociality_manual_share * user.sociality * legit_factor
            )
            for _ in range(manual):
                # Draws happen unconditionally (the replicated-trace
                # invariant); only the local shard schedules the event.
                address, _ip = self.world.create_new_contact(rng)
                t = self._day_time(day, legit=True)
                if installation is not None:
                    self.simulator.schedule(
                        t,
                        partial(
                            installation.manual_whitelist, user.address, address
                        ),
                    )

    def _stage_legit(
        self, handler, user, sender: str, day: int, size: int
    ) -> None:
        rng = self.rng
        t = self._day_time(day, legit=True)
        client_ip = self.world.client_ip_for_address(sender)
        if (
            client_ip is None
            or rng.random() < self.calibration.legit_spf_misroute_prob
        ):
            client_ip = rng.choice(self.world.forwarder_ips)
        self._rows.append((
            t,
            sender,
            user.address,
            naming.make_short_subject(rng),
            size,
            client_ip,
            _LEGIT,
            _REAL,
            None,
            False,
        ))
        self._handlers.append(handler)

    def _stage_dsn(self, handler, user, day: int, size: int) -> None:
        """A bounce of the user's own misaddressed outbound mail: null
        reverse-path, sent by some remote MTA."""
        ext = self.rng.choice(self.world.external_domains)
        t = self._day_time(day, legit=True)
        self._rows.append((
            t,
            "",
            user.address,
            "undelivered mail returned to sender",
            size // 4 + 500,
            ext.ip,
            _LEGIT,
            _REAL,
            "dsn",
            False,
        ))
        self._handlers.append(handler)

    def _stage_nuisance(
        self, handler, user, sender: str, day: int, size: int
    ) -> None:
        t = self._day_time(day, legit=False)
        client_ip = self.world.client_ip_for_address(sender) or "192.0.2.1"
        self._rows.append((
            t,
            sender,
            user.address,
            naming.make_short_subject(self.rng),
            size,
            client_ip,
            _SPAM,
            _REAL,
            None,
            False,
        ))
        self._handlers.append(handler)

    def _schedule_outbound(
        self, installation, user, rcpt: str, day: int
    ) -> None:
        # Draw order matches the historical inline call: arrival time from
        # the trace stream first, then the size stream. Both draws happen
        # even when the company lives on another shard (replicated-trace
        # invariant); only the local shard schedules the delivery.
        t = self._day_time(day, legit=True)
        size = self.size_model.legit()
        if installation is not None:
            self.simulator.schedule(
                t,
                partial(installation.send_user_mail, user.local, rcpt, size),
            )

    # -- newsletters ---------------------------------------------------------

    def _plan_newsletters(self, day: int) -> None:
        for source in self.world.newsletter_sources:
            day_in_cycle = (day - source.phase_days) % source.period_days
            if not 0 <= day_in_cycle < 1:
                continue
            source.issues_sent += 1
            subject = naming.make_newsletter_subject(
                self.rng, source.issues_sent
            )
            sender = self.rng.choice(source.senders)
            size = self.size_model.newsletter()
            volume = self.world.scale.volume_scale
            for company_id, subscriber in source.subscribers:
                # Newsletter volume scales with the preset like every other
                # inbound stream. The roll precedes the routing lookup so
                # remote subscribers consume the identical draws.
                if self.rng.random() >= volume:
                    continue
                handler = self._route[company_id]
                t = self._day_time(day, legit=True)
                self._rows.append((
                    t,
                    sender,
                    subscriber,
                    subject,
                    size,
                    source.ip,
                    _NEWSLETTER,
                    _REAL,
                    source.source_id,
                    False,
                ))
                self._handlers.append(handler)

    def _plan_marketing(self, day: int) -> None:
        """Unsolicited marketing blasts: one fixed long subject per blast,
        near-identical senders, real well-configured servers (so the
        messages survive the filters and pile up in gray spools)."""
        volume = self.world.scale.volume_scale
        for source in self.world.marketing_sources:
            day_in_cycle = (day - source.phase_days) % source.period_days
            if not 0 <= day_in_cycle < 1:
                continue
            source.blasts_sent += 1
            subject = naming.make_campaign_subject(self.rng, 11)
            sender = self.rng.choice(source.senders)
            size = self.size_model.newsletter()
            for company in self.world.companies:
                handler = self._route[company.company_id]
                expected = source.coverage * company.n_users * volume
                count = poisson(self.rng, expected)
                targets = self.rng.sample(
                    company.users, min(count, company.n_users)
                )
                for user in targets:
                    t = self._day_time(day, legit=True)
                    self._rows.append((
                        t,
                        sender,
                        user.address,
                        subject,
                        size,
                        source.ip,
                        _NEWSLETTER,
                        _REAL,
                        source.source_id,
                        False,
                    ))
                    self._handlers.append(handler)

    # -- spam ---------------------------------------------------------------

    def _plan_spam(
        self,
        company: Company,
        day: int,
        spam_factor: float,
    ) -> None:
        """Stage the day's spam aimed at *company*.

        This is the generator's single hottest loop (tens of thousands of
        iterations per simulated day on the larger presets), so the whole
        per-message pipeline — campaign pick, sender forgery, recipient
        draw, bot IP, arrival time, virus roll — is inlined here with
        every constant hoisted. Each branch reproduces the retired
        ``_stage_spam``/``_spam_sender``/``_spam_recipient`` helpers
        draw-for-draw; in particular the forgery-class roll keeps the
        original *sequential subtraction* (``roll -= frac``) because
        re-associating it into precomputed cut-points would change float
        rounding and therefore the trace.
        """
        if not self.active_campaigns:
            return
        cal = self.calibration
        rng = self.rng
        base = (
            cal.spam_valid_rate
            * company.n_users
            * company.spam_multiplier
            * self.world.scale.volume_scale
            * spam_factor
        )
        groups = [
            ("valid", poisson(rng, base)),
            ("unknown", poisson(rng, base * cal.spam_unknown_recipient_factor)),
            ("foreign", poisson(rng, base * cal.spam_foreign_factor)),
        ]
        if company.config.open_relay:
            groups.append(
                ("relay", poisson(rng, base * cal.relay_spam_factor))
            )
        handler = self._route[company.company_id]

        random_ = rng.random
        choice = rng.choice
        getrandbits = rng.getrandbits
        world = self.world
        campaigns = self.active_campaigns
        camp_cum = self._campaign_cum
        camp_total = self._campaign_total
        camp_hi = len(campaigns) - 1
        spam_cum = self._spam_hour_cum
        spam_total = self._spam_hour_total
        day_base = day * DAY
        rows_append = self._rows.append
        handlers_append = self._handlers.append
        malformed_frac = cal.spam_malformed_sender_frac
        unresolvable_frac = cal.spam_unresolvable_sender_frac
        rejected_frac = cal.spam_rejected_sender_frac
        rejected = self._rejected_by_company[company.company_id]
        snowshoe_frac = cal.relay_snowshoe_frac
        snowshoe_ips = world.snowshoe_ips
        nonexistent = SenderClass.NONEXISTENT_MAILBOX
        make_malformed = naming.make_malformed_address
        make_person_local = naming.make_person_local
        sample_unresolvable = world.sample_unresolvable_sender
        unknown_suffix = "@" + company.config.domain
        relay_domains = company.config.relay_domains
        external_domains = world.external_domains

        for group, count in groups:
            if not count:
                continue
            sizes = self.size_model.spam_batch(count)
            mode = ("valid", "unknown", "foreign", "relay").index(group)
            for size in sizes:
                campaign = campaigns[
                    bisect(camp_cum, random_() * camp_total, 0, camp_hi)
                ]

                # -- forged envelope sender (was _spam_sender) ------------
                roll = random_()
                if roll < malformed_frac:
                    env_from = make_malformed(rng)
                    sender_class = nonexistent
                else:
                    roll -= malformed_frac
                    if roll < unresolvable_frac:
                        env_from = sample_unresolvable(rng)
                        sender_class = nonexistent
                    else:
                        roll -= unresolvable_frac
                        if rejected and roll < rejected_frac:
                            env_from = choice(rejected)
                            sender_class = nonexistent
                        else:
                            env_from, sender_class = campaign.sample_sender(
                                world, company, rng
                            )

                # -- recipient (was _spam_recipient) ----------------------
                if mode == 0:  # harvested protected user
                    env_to = campaign.sample_target(company, rng).address
                elif mode == 1:  # dictionary attack on unknown mailboxes
                    env_to = (
                        "zz" + format(getrandbits(40), "010x") + unknown_suffix
                    )
                elif mode == 2:  # relay probe for a foreign domain
                    ext = choice(external_domains)
                    env_to = make_person_local(rng) + "@" + ext.domain
                else:  # mode == 3: relayed through our open relay
                    env_to = make_person_local(rng) + "@" + choice(relay_domains)

                # Relayed spam partly arrives via snowshoe bulk hosts whose
                # clean PTR/blacklist profile slips past the filters (the
                # open relays' extra challenges, Fig. 3).
                if mode == 3 and random_() < snowshoe_frac:
                    client_ip = choice(snowshoe_ips)
                else:
                    client_ip = choice(campaign.bot_ips)

                hour = bisect(spam_cum, random_() * spam_total, 0, 23)
                rows_append((
                    day_base + hour * HOUR + random_() * HOUR,
                    env_from,
                    env_to,
                    campaign.subject,
                    size,
                    client_ip,
                    _SPAM,
                    sender_class,
                    campaign.campaign_id,
                    random_() < campaign.virus_prob,
                ))
                handlers_append(handler)

    # -- shared helpers --------------------------------------------------------

    def _day_time(self, day: int, legit: bool) -> float:
        # Inlined random.choices(hours, cum_weights=cum): one random()
        # draw scaled by the identical total, bisected over the same
        # prefix sums — bit-equal results without rebuilding the call
        # machinery per message.
        rng = self.rng
        if legit:
            cum = self._legit_hour_cum
            total = self._legit_hour_total
        else:
            cum = self._spam_hour_cum
            total = self._spam_hour_total
        hour = bisect(cum, rng.random() * total, 0, 23)
        return day * DAY + hour * HOUR + rng.random() * HOUR


def _cumulative(weights) -> list[float]:
    total = 0.0
    cum = []
    for w in weights:
        total += w
        cum.append(total)
    return cum
