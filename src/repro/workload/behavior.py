"""Sender and recipient behaviour models.

Everything *human* about the measurement lives here: whether and when a
challenged sender opens the CAPTCHA page and solves it, whether a
backscatter victim confusedly solves a challenge for mail they never sent
(§4.1's spurious deliveries), and how diligently users weed their daily
digests. These behaviours plug into the CR engine through
:class:`repro.core.engine.BehaviorHooks`.
"""

from __future__ import annotations

import math
import random
from functools import partial
from typing import TYPE_CHECKING

from repro.core.challenge import Challenge
from repro.core.digest import DigestAction, DigestDecision
from repro.core.engine import BehaviorHooks, CompanyInstallation
from repro.core.message import MessageKind, SenderClass
from repro.core.spools import GrayEntry
from repro.util.rng import RngStreams
from repro.util.simtime import DAY, HOUR, MINUTE
from repro.workload.calibration import Calibration

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.entities import World


class BehaviorModel:
    """Implements both hooks of :class:`BehaviorHooks`.

    Draws come from one stream **per company** (``behavior/<company_id>``),
    not a single shared stream consumed in global event order: a company's
    human behaviour must depend only on that company's own events, so a
    sharded run — where each worker only executes its own companies'
    events — draws the identical sequence a whole-world run draws.
    """

    def __init__(
        self, world: "World", calibration: Calibration, streams: RngStreams
    ) -> None:
        self.calibration = calibration
        self._streams = streams
        self._rngs: dict[str, random.Random] = {}
        #: Digest entries the user has already decided on: users skim each
        #: quarantined message once — they do not re-evaluate yesterday's
        #: junk every morning.
        self._digest_decided: set = set()
        self._newsletter_solve_prob = {
            source.source_id: source.solve_prob
            for source in world.newsletter_sources
        }
        # Marketing operators answer (or ignore) challenges the same way.
        self._newsletter_solve_prob.update(
            {
                source.source_id: source.solve_prob
                for source in world.marketing_sources
            }
        )
        #: Attack campaigns whose operator answers challenges (a CAPTCHA
        #: farm, a whitelist poisoner): campaign_id -> (solve_prob,
        #: delay_min, delay_max). Registered by
        #: :meth:`repro.workload.attacks.AttackScenario.install`; empty —
        #: and consulted without consuming any RNG — in scenario-free
        #: runs, so their goldens stay byte-identical.
        self._campaign_solvers: dict = {}

    def register_campaign_solver(
        self,
        campaign_id: str,
        solve_prob: float,
        delay_min: float,
        delay_max: float,
    ) -> None:
        """Arm an attacker-operated challenge solver for *campaign_id*."""
        self._campaign_solvers[campaign_id] = (
            solve_prob, delay_min, delay_max
        )

    def hooks(self) -> BehaviorHooks:
        return BehaviorHooks(
            on_challenge_delivered=self.on_challenge_delivered,
            digest_review=self.digest_review,
        )

    def _rng_for(self, installation: CompanyInstallation) -> random.Random:
        """The company-local behaviour stream for *installation*."""
        company_id = (
            installation.config.company_id if installation is not None else ""
        )
        rng = self._rngs.get(company_id)
        if rng is None:
            rng = self._rngs[company_id] = self._streams.stream(
                f"behavior/{company_id}"
            )
        return rng

    # -- challenge recipient behaviour -----------------------------------

    def on_challenge_delivered(
        self, installation: CompanyInstallation, challenge: Challenge
    ) -> None:
        """Decide how the mailbox that received this challenge reacts."""
        origin = challenge.origin
        if origin is None:
            return
        solver = (
            self._campaign_solvers.get(origin.campaign_id)
            if origin.campaign_id
            else None
        )
        if solver is not None:
            self._attacker_reacts(installation, challenge, solver)
            return
        if origin.kind is MessageKind.LEGIT:
            self._legit_sender_reacts(installation, challenge)
        elif origin.kind is MessageKind.NEWSLETTER:
            self._newsletter_operator_reacts(installation, challenge, origin)
        elif origin.sender_class is SenderClass.INNOCENT_THIRD_PARTY:
            self._innocent_victim_reacts(installation, challenge)
        # Other spam spoof classes (spammer-owned mailboxes, traps) simply
        # ignore the challenge: the URL is never opened.

    def _legit_sender_reacts(
        self, installation: CompanyInstallation, challenge: Challenge
    ) -> None:
        cal = self.calibration
        rng = self._rng_for(installation)
        roll = rng.random()
        if roll < cal.legit_solve_prob:
            self._schedule_solve(
                installation, challenge, self._solve_delay(rng)
            )
        elif roll < cal.legit_solve_prob + cal.legit_abandon_prob:
            # Visited but never solved (0.25 % of delivered, §3.2).
            delay = self._solve_delay(rng)
            self._schedule_open_only(installation, challenge, delay)

    def _newsletter_operator_reacts(
        self,
        installation: CompanyInstallation,
        challenge: Challenge,
        origin,
    ) -> None:
        solve_prob = self._newsletter_solve_prob.get(origin.campaign_id, 0.0)
        rng = self._rng_for(installation)
        if rng.random() < solve_prob:
            # Operators answer during office hours, within the working day.
            delay = rng.uniform(10 * MINUTE, 8 * HOUR)
            self._schedule_solve(installation, challenge, delay)

    def _attacker_reacts(
        self,
        installation: CompanyInstallation,
        challenge: Challenge,
        solver: tuple,
    ) -> None:
        """An attack operator (CAPTCHA farm, poisoner) answering its own
        challenges. Draws come from the victim company's behaviour stream
        so sharded runs replay them identically."""
        solve_prob, delay_min, delay_max = solver
        rng = self._rng_for(installation)
        if rng.random() < solve_prob:
            delay = rng.uniform(delay_min, delay_max)
            self._schedule_solve(installation, challenge, delay)

    def _innocent_victim_reacts(
        self, installation: CompanyInstallation, challenge: Challenge
    ) -> None:
        cal = self.calibration
        rng = self._rng_for(installation)
        if rng.random() >= cal.innocent_open_prob:
            return
        delay = rng.uniform(10 * MINUTE, 2 * DAY)
        if rng.random() < cal.innocent_solve_given_open:
            # The §4.1 mechanism: a victim solves a challenge for mail they
            # never sent, whitelisting the forged sender and releasing spam.
            self._schedule_solve(installation, challenge, delay)
        else:
            self._schedule_open_only(installation, challenge, delay)

    # -- web-flow scheduling ------------------------------------------------

    def _schedule_solve(
        self,
        installation: CompanyInstallation,
        challenge: Challenge,
        delay: float,
    ) -> None:
        attempts = self._sample_attempts(self._rng_for(installation))
        simulator = installation.simulator
        challenge_id = challenge.challenge_id
        open_at = simulator.now + delay
        simulator.schedule(
            open_at, partial(installation.record_web_open, challenge_id)
        )
        # Failed tries ~30 s apart, then the successful submission.
        for i in range(attempts - 1):
            simulator.schedule(
                open_at + 30.0 * (i + 1),
                partial(installation.record_web_attempt, challenge_id, False),
            )
        simulator.schedule(
            open_at + 30.0 * attempts,
            partial(installation.solve_challenge, challenge_id),
        )

    def _schedule_open_only(
        self,
        installation: CompanyInstallation,
        challenge: Challenge,
        delay: float,
    ) -> None:
        simulator = installation.simulator
        challenge_id = challenge.challenge_id
        simulator.schedule(
            simulator.now + delay,
            partial(installation.record_web_open, challenge_id),
        )

    def _sample_attempts(self, rng: random.Random) -> int:
        """How many CAPTCHA tries the solver needs (Fig. 4(b): at most 5)."""
        probs = self.calibration.captcha_attempts_probs
        roll = rng.random()
        cumulative = 0.0
        for i, p in enumerate(probs, start=1):
            cumulative += p
            if roll < cumulative:
                return i
        return len(probs)

    def _solve_delay(self, rng: random.Random) -> float:
        """Fig. 7/8 mixture: mostly minutes, a tail of hours-to-days."""
        cal = self.calibration
        roll = rng.random()
        if roll < cal.solve_fast_prob:
            return cal.solve_fast_median * math.exp(
                rng.gauss(0.0, cal.solve_fast_sigma)
            )
        if roll < cal.solve_fast_prob + cal.solve_medium_prob:
            return rng.uniform(30 * MINUTE, 4 * HOUR)
        return rng.uniform(4 * HOUR, 3 * DAY)

    # -- digest behaviour -------------------------------------------------------

    def digest_review(
        self,
        installation: CompanyInstallation,
        user: str,
        entries: list[GrayEntry],
        now: float,
    ) -> list[DigestDecision]:
        """One user's pass over their daily digest."""
        cal = self.calibration
        rng = self._rng_for(installation)
        if rng.random() >= cal.digest_review_prob:
            return []
        decisions = []
        for entry in entries:
            msg_id = entry.message.msg_id
            if msg_id in self._digest_decided:
                continue
            self._digest_decided.add(msg_id)
            kind = entry.message.kind
            campaign = entry.message.campaign_id or ""
            roll = rng.random()
            if not entry.message.env_from:
                # Bounce notifications: skimmed and deleted half the time,
                # never whitelisted (there is no sender to whitelist).
                if roll < 0.5:
                    decisions.append(
                        DigestDecision(
                            msg_id=msg_id,
                            action=DigestAction.DELETE,
                            act_delay=self._act_delay(rng),
                        )
                    )
            elif kind is MessageKind.LEGIT:
                if roll < cal.digest_whitelist_prob_legit:
                    decisions.append(self._whitelist_decision(entry, rng))
            elif kind is MessageKind.NEWSLETTER:
                # Solicited newsletters get rescued; unsolicited marketing
                # blasts (mk-*) almost never do.
                prob = (
                    cal.digest_whitelist_prob_marketing
                    if campaign.startswith("mk-")
                    else cal.digest_whitelist_prob_newsletter
                )
                if roll < prob:
                    decisions.append(self._whitelist_decision(entry, rng))
            else:
                if roll < cal.digest_delete_prob_spam:
                    decisions.append(
                        DigestDecision(
                            msg_id=entry.message.msg_id,
                            action=DigestAction.DELETE,
                            act_delay=self._act_delay(rng),
                        )
                    )
        return decisions

    def _whitelist_decision(
        self, entry: GrayEntry, rng: random.Random
    ) -> DigestDecision:
        return DigestDecision(
            msg_id=entry.message.msg_id,
            action=DigestAction.WHITELIST,
            act_delay=self._act_delay(rng),
        )

    def _act_delay(self, rng: random.Random) -> float:
        return rng.uniform(*self.calibration.digest_act_delay_range)
