"""Deterministic name generation for synthetic entities.

Domains, mailbox locals, and spam-campaign subjects are generated from word
lists so that traces are human-readable in logs and — important for Fig. 6 —
campaign subjects are realistic multi-word strings that exact-subject
clustering can group.
"""

from __future__ import annotations

import random

_SYLLABLES = (
    "ba be bi bo bu da de di do du fa fe fi fo fu ga ge gi go gu "
    "ka ke ki ko ku la le li lo lu ma me mi mo mu na ne ni no nu "
    "pa pe pi po pu ra re ri ro ru sa se si so su ta te ti to tu "
    "va ve vi vo vu za ze zi zo zu"
).split()

_TLDS = ("com", "net", "org", "biz", "info")

_FIRST_NAMES = (
    "alice bob carol dave erin frank grace heidi ivan judy karl laura "
    "mallory nick olivia peggy quentin rupert sybil trent ursula victor "
    "wendy xavier yves zoe marco anna luca elena paolo sofia"
).split()

_LAST_NAMES = (
    "smith jones brown taylor wilson davies evans thomas roberts walker "
    "wright hall green wood clarke jackson white harris martin moore "
    "rossi russo ferrari bianchi romano ricci marino greco conti gallo"
).split()

_SUBJECT_WORDS = (
    "exclusive offer limited time only best price guaranteed quality "
    "discount online pharmacy meds cheap genuine brand watches replica "
    "luxury designer software licensed download instant approval loan "
    "credit score boost income work from home opportunity amazing deal "
    "free shipping worldwide order now today special promotion winner "
    "congratulations selected customer account verify urgent update "
    "security notice important information regarding your recent"
).split()

#: Vocabulary of ordinary person-to-person mail. Overlaps with the spam
#: vocabulary on common words (as real mail does), so token-based content
#: filters face a realistic — not trivial — separation problem.
_LEGIT_SUBJECT_WORDS = (
    "re fwd meeting notes tomorrow agenda project update status report "
    "question about the invoice draft review attached schedule lunch "
    "thanks follow up call minutes budget proposal contract travel "
    "holiday photos family weekend dinner plans reminder deadline "
    "presentation slides feedback quick sync monthly numbers your recent "
    "order account information today regarding request offer"
).split()

_NEWSLETTER_TOPICS = (
    "weekly market digest and investment insights for registered members",
    "monthly product updates and special offers for valued subscribers",
    "your daily technology briefing with curated industry headlines inside",
    "seasonal travel deals and destination guides for frequent flyers",
    "new arrivals and member only discounts in our online store",
    "community newsletter with events announcements and volunteer updates",
    "research bulletin covering recent publications and conference deadlines",
    "partner program news with commission updates and promotional material",
)


def make_domain(rng: random.Random, suffix: str = "") -> str:
    """A pronounceable second-level domain like ``kelozu.net``."""
    n_syllables = rng.randint(3, 4)
    name = "".join(rng.choice(_SYLLABLES) for _ in range(n_syllables))
    if suffix:
        name = f"{name}-{suffix}"
    return f"{name}.{rng.choice(_TLDS)}"


def make_person_local(rng: random.Random) -> str:
    """A person-style mailbox local part like ``anna.rossi7``."""
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    style = rng.randrange(4)
    if style == 0:
        local = f"{first}.{last}"
    elif style == 1:
        local = f"{first[0]}{last}"
    elif style == 2:
        local = f"{first}{rng.randint(1, 99)}"
    else:
        local = f"{first}.{last}{rng.randint(1, 9)}"
    return local


def make_campaign_subject(rng: random.Random, n_words: int) -> str:
    """A fixed spam-campaign subject of *n_words* words (Fig. 6 clusters
    on exact subjects at least 10 words long)."""
    return " ".join(rng.choice(_SUBJECT_WORDS) for _ in range(n_words))


def make_short_subject(rng: random.Random) -> str:
    """A short, variable subject (ordinary person-to-person mail)."""
    return " ".join(
        rng.choice(_LEGIT_SUBJECT_WORDS) for _ in range(rng.randint(2, 6))
    )


def make_newsletter_subject(rng: random.Random, issue: int) -> str:
    """A newsletter issue subject: a fixed long topic + issue number.

    All recipients of one issue share the exact subject, forming the
    high-sender-similarity clusters of Fig. 6.
    """
    return f"{rng.choice(_NEWSLETTER_TOPICS)} issue {issue}"


def make_malformed_address(rng: random.Random) -> str:
    """A syntactically invalid envelope sender (MTA-IN "Malformed email")."""
    choices = (
        "no-at-sign.example.com",
        "double@@at.example.com",
        "bad domain@spaces .com",
        "trailing.dot@example.com.",
        "@missing-local.com",
        "missing-domain@",
        "bad<chars>@example.com",
        "unicodeé@exaçmple.com",
    )
    return rng.choice(choices)
