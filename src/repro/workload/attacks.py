"""Adversarial scenarios against a CR installation.

The paper deliberately excluded active attacks from its measurements but
names two in §6 / "Other Limitations":

* **whitelist spoofing** — forging the envelope sender "using a
  likely-whitelisted address", which walks straight past the dispatcher
  into the inbox;
* **trap bombing** — forging messages whose (spoofed) senders are spam-trap
  addresses "with the goal of forcing the server to send back the
  challenge to spam trap addresses, thus increasing the likelihood of
  getting the server IP added to one or more blacklist".

Both are implemented here as pluggable scenarios for
:func:`repro.experiments.run_simulation`; see
``examples/attack_scenarios.py`` for an end-to-end evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Mapping

from repro.core.engine import CompanyInstallation
from repro.core.message import MessageKind, SenderClass, make_message
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams, poisson
from repro.util.simtime import DAY
from repro.workload import naming

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.entities import World


@dataclass
class AttackScenario:
    """Base class: schedules adversarial traffic against one company."""

    company_id: str
    start_day: int = 1
    duration_days: int = 7
    messages_per_day: float = 50.0
    #: Filled by :meth:`install`; used by evaluations.
    campaign_id: str = field(default="attack", init=False)

    def install(
        self,
        world: "World",
        simulator: Simulator,
        installations: Mapping[str, CompanyInstallation],
        streams: RngStreams,
    ) -> None:
        installation = installations.get(self.company_id)
        if installation is None:
            raise KeyError(f"unknown company {self.company_id!r}")
        rng = streams.stream(f"attack/{self.campaign_id}/{self.company_id}")
        company = next(
            c for c in world.companies if c.company_id == self.company_id
        )
        for day in range(self.start_day, self.start_day + self.duration_days):
            simulator.schedule(
                day * DAY,
                partial(
                    self._plan_day,
                    world, simulator, installation, company, rng, day,
                ),
                label=f"{self.campaign_id}:{self.company_id}",
            )

    def _plan_day(
        self, world, simulator, installation, company, rng, day
    ) -> None:
        for _ in range(poisson(rng, self.messages_per_day)):
            t = day * DAY + rng.uniform(0, DAY)
            message = self._forge(world, company, rng, t)
            simulator.schedule(t, partial(installation.handle_inbound, message))

    def _forge(self, world, company, rng, t):  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class TrapBombingAttack(AttackScenario):
    """Force the victim's challenge server into DNSBLs.

    Every attack message carries a spam-trap address as its envelope
    sender and is delivered from a clean-looking host (valid PTR, not on
    any blacklist) so the auxiliary filters pass it — the whole point is
    that the CR engine *does* reflect a challenge, straight into a trap.
    """

    def __post_init__(self) -> None:
        self.campaign_id = "attack-trapbomb"
        self._attack_ips: list = []

    def _forge(self, world, company, rng, t):
        if not self._attack_ips:
            # A small pool of rented clean hosts with PTR records.
            for i in range(8):
                ip = world._ip_allocator.allocate()
                world.registry.register_client_ptr(
                    ip, f"mx{i}.clean-looking.example"
                )
                self._attack_ips.append(ip)
        target = rng.choice(company.users)
        return make_message(
            t,
            world.sample_trap_sender(rng),
            target.address,
            subject=naming.make_campaign_subject(rng, 11),
            size=4_000,
            client_ip=rng.choice(self._attack_ips),
            kind=MessageKind.SPAM,
            sender_class=SenderClass.SPAM_TRAP,
            campaign_id=self.campaign_id,
        )


@dataclass
class WhitelistSpoofingAttack(AttackScenario):
    """Deliver spam by forging likely-whitelisted senders.

    With probability ``guess_prob`` the attacker forges an address that is
    actually in the target's whitelist (reconnaissance: public address
    books, leaked correspondence); otherwise they guess a plausible but
    unknown contact.
    """

    guess_prob: float = 0.5

    def __post_init__(self) -> None:
        self.campaign_id = "attack-spoof"

    def _forge(self, world, company, rng, t):
        target = rng.choice(company.users)
        if target.contacts and rng.random() < self.guess_prob:
            sender = rng.choice(target.contacts)
        else:
            sender = world.sample_innocent_sender(rng)
        # Bots deliver the spoofed mail; SPF would catch many of these,
        # but the deployed product does not check SPF (Fig. 12).
        bot_ip = world._ip_allocator.allocate()
        world.registry.register_client_ptr(
            bot_ip, f"host-{bot_ip.replace('.', '-')}.dynamic.example"
        )
        return make_message(
            t,
            sender,
            target.address,
            subject=naming.make_campaign_subject(rng, 10),
            size=6_000,
            client_ip=bot_ip,
            kind=MessageKind.SPAM,
            sender_class=SenderClass.INNOCENT_THIRD_PARTY,
            campaign_id=self.campaign_id,
        )
