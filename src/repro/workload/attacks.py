"""Adversarial scenarios against a CR installation.

The paper deliberately excluded active attacks from its measurements but
names two in §6 / "Other Limitations":

* **whitelist spoofing** — forging the envelope sender "using a
  likely-whitelisted address", which walks straight past the dispatcher
  into the inbox;
* **trap bombing** — forging messages whose (spoofed) senders are spam-trap
  addresses "with the goal of forcing the server to send back the
  challenge to spam trap addresses, thus increasing the likelihood of
  getting the server IP added to one or more blacklist".

This module generalises those two into a family of attack classes the
declarative scenario pack (``scenarios/*.yaml``, see
:mod:`repro.scenarios`) instantiates by kind name through
:func:`build_attack`. Every attack obeys the replicated-trace invariant
of the sharded data plane (DESIGN.md §12): ``install`` and the per-day
planning draws run identically on every shard — counts, arrival times,
forged payloads, message-id and attacker-IP allocation all come from the
attack's own named RNG stream — and only the *delivery* of each message
is gated on whether this shard owns the victim company. A sharded
scenario run therefore merges to the same store digest as ``shards=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Mapping, Optional

from repro.core.engine import CompanyInstallation
from repro.core.message import MessageKind, SenderClass, make_message
from repro.net.hosts import RemoteMailHost
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams, poisson
from repro.util.simtime import DAY, HOUR, MINUTE
from repro.workload import naming

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.entities import World


@dataclass
class AttackScenario:
    """Base class: schedules adversarial traffic against one company."""

    company_id: str
    start_day: int = 1
    duration_days: int = 7
    messages_per_day: float = 50.0
    #: Filled by :meth:`install`; used by evaluations.
    campaign_id: str = field(default="attack", init=False)

    def install(
        self,
        world: "World",
        simulator: Simulator,
        installations: Mapping[str, CompanyInstallation],
        streams: RngStreams,
        *,
        shard=None,
        behavior=None,
    ) -> None:
        """Arm the attack: validate it, allocate this run's attacker
        infrastructure, and schedule one planning event per attack day.

        In a sharded run (*shard* set) every worker installs the attack —
        planning draws must stay lock-step across replicas — but only the
        shard owning the victim company holds an installation and
        actually delivers the forged mail.
        """
        company = None
        for candidate in world.companies:
            if candidate.company_id == self.company_id:
                company = candidate
                break
        if company is None:
            known = ", ".join(c.company_id for c in world.companies)
            raise KeyError(
                f"unknown company {self.company_id!r} for attack "
                f"{self.campaign_id!r}; this deployment has: {known}"
            )
        if self.duration_days < 1:
            raise ValueError(
                f"attack {self.campaign_id!r}: duration_days must be >= 1, "
                f"got {self.duration_days}"
            )
        last_day = self.start_day + self.duration_days - 1
        if self.start_day < 0 or last_day >= world.scale.n_days:
            raise ValueError(
                f"attack {self.campaign_id!r} runs days {self.start_day}.."
                f"{last_day} but the horizon is {world.scale.n_days} days "
                f"(valid days 0..{world.scale.n_days - 1}); attack days "
                "past the end would silently never fire"
            )
        installation = installations.get(self.company_id)
        if installation is None and shard is None:
            raise KeyError(
                f"company {self.company_id!r} exists in the world but has "
                "no installation; world and installations disagree"
            )
        rng = streams.stream(f"attack/{self.campaign_id}/{self.company_id}")
        self._prepare(world, rng)
        if behavior is not None:
            solver = self.challenge_solver()
            if solver is not None:
                behavior.register_campaign_solver(self.campaign_id, *solver)
        for day in range(self.start_day, self.start_day + self.duration_days):
            simulator.schedule(
                day * DAY,
                partial(
                    self._plan_day,
                    world, simulator, installation, company, rng, day,
                ),
                label=f"{self.campaign_id}:{self.company_id}",
            )

    def challenge_solver(self) -> Optional[tuple]:
        """``(solve_prob, delay_min, delay_max)`` if this attacker answers
        the challenges its forged mail provokes, else ``None``."""
        return None

    def _prepare(self, world, rng) -> None:
        """Allocate this run's attacker infrastructure (IPs, domains).

        Runs once per :meth:`install`, never lazily inside ``_forge``:
        per-run state must be leased from *this* run's world, so a
        scenario object reused across runs stays deterministic.
        """

    def _plan_day(
        self, world, simulator, installation, company, rng, day
    ) -> None:
        # Replicated-trace invariant: the draws below (count, times,
        # forged payloads, msg ids) happen unconditionally on every
        # shard; only the local owner schedules the delivery.
        for _ in range(poisson(rng, self.messages_per_day)):
            t = day * DAY + rng.uniform(0, DAY)
            message = self._forge(world, company, rng, t)
            if installation is not None:
                simulator.schedule(
                    t, partial(installation.handle_inbound, message)
                )

    def _forge(self, world, company, rng, t):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared attacker infrastructure helpers --------------------------

    def _lease_clean_ips(self, world, count: int, host_pattern: str) -> list:
        """A pool of rented clean hosts with valid PTR records, so the
        auxiliary filters pass the mail through to the CR engine."""
        ips = []
        for i in range(count):
            ip = world._ip_allocator.allocate()
            world.registry.register_client_ptr(ip, host_pattern.format(i=i))
            ips.append(ip)
        return ips

    def _lease_bot_ip(self, world) -> str:
        """One botnet member: dynamic-pool PTR, used for a single blast."""
        bot_ip = world._ip_allocator.allocate()
        world.registry.register_client_ptr(
            bot_ip, f"host-{bot_ip.replace('.', '-')}.dynamic.example"
        )
        return bot_ip

    def _register_attacker_domain(
        self, world, domain: str, locals_: list
    ) -> str:
        """Stand up a fully-functional attacker-controlled mail domain
        (A/MX/PTR records plus real mailboxes) and return its server IP.
        Challenges sent to *locals_*@*domain* are actually delivered."""
        ip = world._ip_allocator.allocate()
        world.registry.register_mail_domain(domain, ip)
        world.internet.register_host(
            RemoteMailHost(domain, ip, mailboxes=set(locals_))
        )
        return ip


@dataclass
class TrapBombingAttack(AttackScenario):
    """Force the victim's challenge server into DNSBLs.

    Every attack message carries a spam-trap address as its envelope
    sender and is delivered from a clean-looking host (valid PTR, not on
    any blacklist) so the auxiliary filters pass it — the whole point is
    that the CR engine *does* reflect a challenge, straight into a trap.
    """

    def __post_init__(self) -> None:
        self.campaign_id = "attack-trapbomb"
        self._attack_ips: list = []

    def _prepare(self, world, rng) -> None:
        self._attack_ips = self._lease_clean_ips(
            world, 8, "mx{i}.clean-looking.example"
        )

    def _forge(self, world, company, rng, t):
        target = rng.choice(company.users)
        return make_message(
            t,
            world.sample_trap_sender(rng),
            target.address,
            subject=naming.make_campaign_subject(rng, 11),
            size=4_000,
            client_ip=rng.choice(self._attack_ips),
            kind=MessageKind.SPAM,
            sender_class=SenderClass.SPAM_TRAP,
            campaign_id=self.campaign_id,
        )


@dataclass
class WhitelistSpoofingAttack(AttackScenario):
    """Deliver spam by forging likely-whitelisted senders.

    With probability ``guess_prob`` the attacker forges an address that is
    actually in the target's whitelist (reconnaissance: public address
    books, leaked correspondence); otherwise they guess a plausible but
    unknown contact.
    """

    guess_prob: float = 0.5

    def __post_init__(self) -> None:
        self.campaign_id = "attack-spoof"

    def _forge(self, world, company, rng, t):
        target = rng.choice(company.users)
        if target.contacts and rng.random() < self.guess_prob:
            sender = rng.choice(target.contacts)
        else:
            sender = world.sample_innocent_sender(rng)
        # Bots deliver the spoofed mail; SPF would catch many of these,
        # but the deployed product does not check SPF (Fig. 12).
        bot_ip = self._lease_bot_ip(world)
        return make_message(
            t,
            sender,
            target.address,
            subject=naming.make_campaign_subject(rng, 10),
            size=6_000,
            client_ip=bot_ip,
            kind=MessageKind.SPAM,
            sender_class=SenderClass.INNOCENT_THIRD_PARTY,
            campaign_id=self.campaign_id,
        )


@dataclass
class BackscatterStormAttack(AttackScenario):
    """Weaponise the CR engine as a backscatter cannon against a third
    party (§3.1's reflection concern, driven deliberately).

    Every forged message claims a *nonexistent* sender mailbox at one
    innocent external domain and arrives from a clean relay pool, so the
    filters pass it and the engine reflects a challenge at the victim's
    MX — where it bounces. The victim pays the bandwidth; the CR server
    burns reputation on undeliverable challenge mail.
    """

    #: Deterministic pick of the spoofed victim among the world's
    #: external domains (an index, so the spec stays a hashable scalar).
    victim_domain_index: int = 0

    def __post_init__(self) -> None:
        self.campaign_id = "attack-backscatter"
        self._attack_ips: list = []
        self._victim_domain: str = ""

    def _prepare(self, world, rng) -> None:
        self._attack_ips = self._lease_clean_ips(
            world, 8, "relay{i}.bulk-mailer.example"
        )
        domains = world.external_domains
        self._victim_domain = domains[
            self.victim_domain_index % len(domains)
        ].domain

    def _forge(self, world, company, rng, t):
        local = "r" + format(rng.getrandbits(48), "012x")
        target = rng.choice(company.users)
        return make_message(
            t,
            f"{local}@{self._victim_domain}",
            target.address,
            subject=naming.make_campaign_subject(rng, 9),
            size=5_000,
            client_ip=rng.choice(self._attack_ips),
            kind=MessageKind.SPAM,
            sender_class=SenderClass.NONEXISTENT_MAILBOX,
            campaign_id=self.campaign_id,
        )


@dataclass
class WhitelistPoisoningAttack(AttackScenario):
    """Poison whitelists by *answering* the victim's challenges.

    Phase 1 (the first ``seed_days`` of the window): a small set of
    attacker-owned addresses at a real attacker-run domain mail the
    victim; the challenges come back to working mailboxes and the
    attacker solves them (``solve_prob``), planting the addresses in
    users' whitelists. Phase 2: bots blast spam forging those same
    now-whitelisted addresses, which the dispatcher waves straight into
    the inbox.
    """

    seed_days: int = 2
    n_senders: int = 6
    solve_prob: float = 0.9

    def __post_init__(self) -> None:
        self.campaign_id = "attack-poison"
        self._senders: list = []
        self._server_ip: str = ""

    def challenge_solver(self) -> Optional[tuple]:
        return (self.solve_prob, 5 * MINUTE, 2 * HOUR)

    def _prepare(self, world, rng) -> None:
        domain = f"poison-{self.company_id}.attacker.example"
        locals_ = [f"news{i}" for i in range(self.n_senders)]
        self._senders = [f"{local}@{domain}" for local in locals_]
        self._server_ip = self._register_attacker_domain(
            world, domain, locals_
        )

    def _forge(self, world, company, rng, t):
        target = rng.choice(company.users)
        sender = rng.choice(self._senders)
        if t < (self.start_day + self.seed_days) * DAY:
            # Seeding phase: sent from the attacker's own (clean, PTR'd)
            # server so the reflected challenge reaches a real mailbox.
            client_ip = self._server_ip
            subject = naming.make_short_subject(rng)
            size = 3_000
        else:
            # Payoff phase: bots forge the freshly-whitelisted senders.
            client_ip = self._lease_bot_ip(world)
            subject = naming.make_campaign_subject(rng, 10)
            size = 7_000
        return make_message(
            t,
            sender,
            target.address,
            subject=subject,
            size=size,
            client_ip=client_ip,
            kind=MessageKind.SPAM,
            sender_class=SenderClass.REAL,
            campaign_id=self.campaign_id,
        )


@dataclass
class CaptchaFarmAttack(AttackScenario):
    """A spammer who simply pays humans to solve the CAPTCHAs.

    The mail is ordinary spam from attacker-owned mailboxes at a real
    attacker domain; what breaks the CR model is that a solving farm
    answers ``solve_prob`` of the reflected challenges, releasing the
    spam *and* whitelisting the senders for every later blast. §6 argues
    CR deployments must assume exactly this adversary.
    """

    n_senders: int = 4
    solve_prob: float = 0.65

    def __post_init__(self) -> None:
        self.campaign_id = "attack-captcha-farm"
        self._senders: list = []
        self._attack_ips: list = []

    def challenge_solver(self) -> Optional[tuple]:
        # Farms bill by the solved CAPTCHA and work around the clock.
        return (self.solve_prob, 2 * MINUTE, 45 * MINUTE)

    def _prepare(self, world, rng) -> None:
        domain = f"farm-{self.company_id}.bulkpro.example"
        locals_ = [f"offers{i}" for i in range(self.n_senders)]
        self._senders = [f"{local}@{domain}" for local in locals_]
        self._register_attacker_domain(world, domain, locals_)
        self._attack_ips = self._lease_clean_ips(
            world, 6, "smtp{i}.bulkpro.example"
        )

    def _forge(self, world, company, rng, t):
        target = rng.choice(company.users)
        return make_message(
            t,
            rng.choice(self._senders),
            target.address,
            subject=naming.make_campaign_subject(rng, 8),
            size=9_000,
            client_ip=rng.choice(self._attack_ips),
            kind=MessageKind.SPAM,
            sender_class=SenderClass.REAL,
            campaign_id=self.campaign_id,
        )


@dataclass
class NewsletterFloodAttack(AttackScenario):
    """A legitimate-but-unknown bulk sender: the false-positive flood.

    A clean, correctly-configured newsletter operator starts mailing the
    victim's users without being whitelisted first — and, like most bulk
    operators the paper measures, never answers challenges. None of this
    is spam, yet nearly all of it lands in quarantine: the damage is
    measured in false positives stuck in the gray spool, not in
    deliveries.
    """

    n_senders: int = 3

    def __post_init__(self) -> None:
        self.campaign_id = "attack-newsflood"
        self._senders: list = []
        self._server_ip: str = ""
        self._issue = 0

    def _prepare(self, world, rng) -> None:
        domain = f"flood-{self.company_id}.weekly-digest.example"
        locals_ = [f"edition{i}" for i in range(self.n_senders)]
        self._senders = [f"{local}@{domain}" for local in locals_]
        self._server_ip = self._register_attacker_domain(
            world, domain, locals_
        )
        self._issue = 0

    def _forge(self, world, company, rng, t):
        target = rng.choice(company.users)
        self._issue += 1
        return make_message(
            t,
            rng.choice(self._senders),
            target.address,
            subject=naming.make_newsletter_subject(rng, self._issue),
            size=18_000,
            client_ip=self._server_ip,
            kind=MessageKind.NEWSLETTER,
            sender_class=SenderClass.REAL,
            campaign_id=self.campaign_id,
        )


@dataclass
class FlashCrowdAttack(AttackScenario):
    """Signup day: a one-day flash crowd of brand-new *legitimate*
    correspondents (a product launch, a conference CFP) none of whom are
    whitelisted yet.

    Not an adversary at all — which is the point: the CR engine responds
    with a challenge storm, and only the fraction of real humans who
    bother to solve (the paper's ~23 % of deliverable challenges) get
    their mail through. The verdict measures the collateral damage of
    treating a flash crowd like an attack.
    """

    duration_days: int = 1
    messages_per_day: float = 400.0

    def __post_init__(self) -> None:
        self.campaign_id = "attack-flashcrowd"

    def _forge(self, world, company, rng, t):
        # Each message comes from a fresh, real external person whose
        # mailbox exists — the challenge can reach them, and the normal
        # legit-sender behaviour model decides whether they solve it.
        sender, client_ip = world.create_new_contact(rng)
        target = rng.choice(company.users)
        return make_message(
            t,
            sender,
            target.address,
            subject=naming.make_short_subject(rng),
            size=2_500,
            client_ip=client_ip,
            kind=MessageKind.LEGIT,
            sender_class=SenderClass.REAL,
            campaign_id=self.campaign_id,
        )


#: kind name (as written in scenario YAML) -> attack class.
ATTACK_KINDS = {
    "trap-bombing": TrapBombingAttack,
    "whitelist-spoofing": WhitelistSpoofingAttack,
    "backscatter-storm": BackscatterStormAttack,
    "whitelist-poisoning": WhitelistPoisoningAttack,
    "captcha-farm": CaptchaFarmAttack,
    "newsletter-flood": NewsletterFloodAttack,
    "flash-crowd": FlashCrowdAttack,
}


def attack_kind_names() -> list:
    return sorted(ATTACK_KINDS)


def build_attack(spec) -> AttackScenario:
    """Instantiate one attack from an :class:`repro.scenarios.AttackSpec`."""
    try:
        cls = ATTACK_KINDS[spec.kind]
    except KeyError:
        raise KeyError(
            f"unknown attack kind {spec.kind!r}; "
            f"known kinds: {', '.join(attack_kind_names())}"
        ) from None
    try:
        return cls(
            company_id=spec.company_id,
            start_day=spec.start_day,
            duration_days=spec.duration_days,
            messages_per_day=spec.messages_per_day,
            **dict(spec.params),
        )
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for attack kind {spec.kind!r}: {exc}"
        ) from None
