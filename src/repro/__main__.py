"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved unix tool.
        sys.stderr.close()
        sys.exit(0)
