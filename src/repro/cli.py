"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate a deployment and print summary statistics;
* ``experiment`` — regenerate one (or all) of the paper's tables/figures;
* ``sweep`` — re-simulate across several seeds in parallel (``--jobs``)
  and report cross-seed stability of the Fig. 5 correlations and the
  CR-vs-Bayes comparison;
* ``serve`` — run the live asyncio SMTP/HTTP frontend over a simulated
  deployment (WAL-durable, backpressured; see DESIGN.md §15);
* ``sstress`` — open-loop load generator against a running ``serve``;
* ``scenarios`` — list the declarative attack-scenario pack;
* ``list`` — list available experiments, scale presets and scenarios.

``run``, ``experiment``, ``company`` and ``sweep`` all accept
``--scenario <name>`` to overlay a declarative scenario (attacks, fault
weather, filter overrides, verdict checks) from the ``scenarios/`` pack.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__
from repro.experiments import run_simulation
from repro.experiments.registry import (
    CANONICAL_ORDER,
    EXPERIMENTS,
    run_experiment,
)
from repro.core.config import chain_preset_names
from repro.net.crashes import crash_preset_names
from repro.net.faults import fault_preset_names
from repro.util.simtime import DAY
from repro.workload.scale import preset_names

#: Where ``--checkpoint-every`` writes snapshots when no --checkpoint-dir
#: is given.
DEFAULT_CLI_CHECKPOINT_DIR = ".cache/checkpoints/cli"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the IMC 2011 challenge-response spam filter "
            "measurement study."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    run_parser = subparsers.add_parser(
        "run", help="simulate a deployment and print summary statistics"
    )
    _add_sim_args(run_parser)
    run_parser.add_argument(
        "--save",
        metavar="PATH",
        help="persist the measurement logs to a JSONL file",
    )

    exp_parser = subparsers.add_parser(
        "experiment", help="regenerate paper tables/figures"
    )
    _add_sim_args(exp_parser)
    exp_parser.add_argument(
        "ids",
        nargs="*",
        metavar="EXP",
        help="experiment ids (e.g. fig1 sec31); default: all",
    )

    company_parser = subparsers.add_parser(
        "company", help="per-installation drill-down report"
    )
    _add_sim_args(company_parser)
    company_parser.add_argument(
        "company_ids",
        nargs="*",
        metavar="COMPANY",
        help="company ids (e.g. c00 c07); default: top 3 by traffic",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="multi-seed re-simulation with parallel fan-out",
    )
    sweep_parser.add_argument(
        "--preset",
        default="tiny",
        choices=preset_names(),
        help="scale preset (default: tiny)",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=3, help="first seed of the sweep"
    )
    sweep_parser.add_argument(
        "--runs",
        type=int,
        default=3,
        metavar="N",
        help="number of consecutive seeds to simulate (default: 3)",
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; 1 (default) runs serially in-process",
    )
    sweep_parser.add_argument(
        "--faults",
        default=None,
        choices=fault_preset_names(),
        help="fault-injection preset applied to every run in the sweep",
    )
    sweep_parser.add_argument(
        "--audit",
        action="store_true",
        help="run every sweep member with the lifecycle auditor on",
    )
    sweep_parser.add_argument(
        "--crashes",
        default=None,
        choices=crash_preset_names(),
        help="crash-fault preset applied to every run in the sweep",
    )
    sweep_parser.add_argument(
        "--filters",
        default=None,
        metavar="CHAIN",
        help=(
            "filter-chain composition applied to every run in the sweep "
            f"(preset: {', '.join(chain_preset_names())}; or comma list)"
        ),
    )
    sweep_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help=(
            "overlay a declarative attack scenario on every run in the "
            "sweep (see `repro scenarios`)"
        ),
    )
    sweep_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache under .cache/runs/",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the live SMTP/HTTP frontend over a simulated deployment",
    )
    serve_parser.add_argument(
        "--preset",
        default="tiny",
        choices=preset_names(),
        help="scale preset for the backing deployment (default: tiny)",
    )
    serve_parser.add_argument("--seed", type=int, default=7)
    serve_parser.add_argument(
        "--wal",
        default="serve.wal",
        metavar="PATH",
        help="write-ahead log path (replayed on start; default: serve.wal)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--smtp-port", type=int, default=0, help="0 = OS-assigned (default)"
    )
    serve_parser.add_argument(
        "--web-port", type=int, default=0, help="0 = OS-assigned (default)"
    )
    serve_parser.add_argument(
        "--endpoints-file",
        default=None,
        metavar="PATH",
        help="announce bound ports and pid as JSON at PATH",
    )
    serve_parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="simulated seconds per wall second (default: 1.0)",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=256, help="admission queue bound"
    )
    serve_parser.add_argument(
        "--batch-max", type=int, default=64, help="WAL group-commit batch cap"
    )
    serve_parser.add_argument(
        "--engine-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="artificial per-message engine cost (overload experiments)",
    )

    stress_parser = subparsers.add_parser(
        "sstress", help="open-loop load generator against a live server"
    )
    stress_parser.add_argument(
        "--smtp-port", type=int, required=True, help="server SMTP port"
    )
    stress_parser.add_argument(
        "--web-port",
        type=int,
        default=None,
        help="server web port (used to discover targets via /directory)",
    )
    stress_parser.add_argument("--host", default="127.0.0.1")
    stress_parser.add_argument(
        "--rate",
        type=float,
        default=200.0,
        metavar="MSGS_PER_SEC",
        help="offered load (open-loop schedule; default: 200)",
    )
    stress_parser.add_argument("--messages", type=int, default=500)
    stress_parser.add_argument("--connections", type=int, default=8)
    stress_parser.add_argument("--seed", type=int, default=1)
    stress_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="replay a pack scenario's attack volume through the server",
    )
    stress_parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH",
    )

    subparsers.add_parser(
        "scenarios", help="list the declarative attack-scenario pack"
    )
    subparsers.add_parser("list", help="list experiments and presets")
    return parser


def _add_sim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="tiny",
        choices=preset_names(),
        help="scale preset (default: tiny)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--faults",
        default=None,
        choices=fault_preset_names(),
        help="fault-injection preset (default: off — reliable substrate)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "continuously audit the message-lifecycle ledger (every "
            "transition validated; equivalent to REPRO_AUDIT=1)"
        ),
    )
    parser.add_argument(
        "--crashes",
        default=None,
        choices=crash_preset_names(),
        help="crash-fault preset (default: off — no component crashes)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        metavar="DAYS",
        help="write a restorable snapshot every N simulated days",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "snapshot directory for --checkpoint-every "
            f"(default: {DEFAULT_CLI_CHECKPOINT_DIR})"
        ),
    )
    parser.add_argument(
        "--resume-from",
        metavar="PATH",
        help=(
            "resume a simulation from a snapshot file; produces output "
            "byte-identical to the uninterrupted run"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "partition the companies across N worker processes "
            "(digest-identical to the single-process run)"
        ),
    )
    parser.add_argument(
        "--shard-jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "concurrent shard workers (default: one per shard; 1 runs "
            "the shards sequentially in-process)"
        ),
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "stream full log chunks to columnar files under DIR, keeping "
            "the store's resident memory bounded"
        ),
    )
    parser.add_argument(
        "--filters",
        default=None,
        metavar="CHAIN",
        help=(
            "auxiliary filter-chain composition: a preset "
            f"({', '.join(chain_preset_names())}) or a comma list of "
            "members, e.g. antivirus,content (default: the product chain)"
        ),
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help=(
            "overlay a declarative attack scenario from the scenarios/ "
            "pack (see `repro scenarios`); also accepts a path to a "
            ".yaml file"
        ),
    )
    parser.add_argument(
        "--load",
        metavar="PATH",
        help="analyse a previously saved run instead of simulating",
    )


def _load_or_run(args: argparse.Namespace):
    if getattr(args, "load", None):
        from repro.analysis.persistence import load_run

        return load_run(args.load)
    if getattr(args, "resume_from", None):
        # For sharded runs --resume-from names the checkpoint *root*
        # (each shard resumes from its own shard-<k>/ subdirectory).
        return run_simulation(
            resume_from=args.resume_from,
            shards=getattr(args, "shards", None),
            shard_jobs=getattr(args, "shard_jobs", None),
            spill_dir=getattr(args, "spill_dir", None),
        )
    checkpoint_every = getattr(args, "checkpoint_every", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if checkpoint_every is not None:
        checkpoint_every *= DAY  # CLI speaks days; the engine sim-seconds
        checkpoint_dir = checkpoint_dir or DEFAULT_CLI_CHECKPOINT_DIR
    return run_simulation(
        args.preset,
        seed=args.seed,
        faults=getattr(args, "faults", None),
        audit=getattr(args, "audit", False),
        crashes=getattr(args, "crashes", None),
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        shards=getattr(args, "shards", None),
        shard_jobs=getattr(args, "shard_jobs", None),
        spill_dir=getattr(args, "spill_dir", None),
        scenario=getattr(args, "scenario", None),
        chain=getattr(args, "filters", None),
    )


def _command_run(args: argparse.Namespace) -> int:
    result = _load_or_run(args)
    counts = result.store.summary_counts()
    wall = getattr(result, "wall_seconds", None)
    suffix = f" ({wall:.1f}s wall time)" if wall is not None else " (loaded)"
    print(
        f"{counts['mta']:,} messages, {result.info.n_companies} companies, "
        f"{result.info.horizon_days:.0f} days" + suffix
    )
    for name, value in counts.items():
        print(f"  {name:20s} {value:,}")
    memory = getattr(result, "memory_stats", None)
    if memory is not None:
        print(
            f"peak RSS {memory.max_rss_bytes / 1e6:,.0f} MB; store "
            f"{memory.store_live_rows:,} rows live "
            f"({memory.store_live_bytes / 1e6:,.1f} MB), "
            f"{memory.store_spilled_bytes / 1e6:,.1f} MB spilled"
        )
    shard_stats = getattr(result, "shard_stats", None)
    if shard_stats is not None and hasattr(shard_stats, "per_shard"):
        for perf in shard_stats.per_shard:
            print(
                f"  shard {perf.index}: {perf.companies} companies, "
                f"{perf.events_processed:,} events, "
                f"{perf.wall_seconds:.1f}s, "
                f"RSS {perf.max_rss_bytes / 1e6:,.0f} MB"
            )
    scenario = getattr(result, "scenario", None)
    if scenario is not None and scenario.verdicts:
        from repro.analysis import verdicts

        print()
        print(verdicts.render(verdicts.evaluate(result, scenario), scenario.description))
    if getattr(args, "save", None):
        from repro.analysis.persistence import save_run

        written = save_run(result.store, result.info, args.save)
        print(f"saved {written:,} records to {args.save}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    ids = args.ids or list(CANONICAL_ORDER)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    result = _load_or_run(args)
    for exp_id in ids:
        print(f"=== {exp_id} ===")
        print(run_experiment(exp_id, result))
        print()
    return 0


def _command_company(args: argparse.Namespace) -> int:
    from repro.analysis import company_report

    result = _load_or_run(args)
    if args.company_ids:
        for company_id in args.company_ids:
            try:
                print(company_report.render(result.store, result.info, company_id))
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
            print()
    else:
        print(company_report.render_all(result.store, result.info, limit=3))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import variability
    from repro.baselines import comparison
    from repro.experiments.parallel import ParallelRunner, RunCache, RunSpec

    if args.runs < 1:
        print("--runs must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    seeds = [args.seed + offset for offset in range(args.runs)]
    cache = None if args.no_cache else RunCache()
    runner = ParallelRunner(jobs=args.jobs, cache=cache)

    print(
        f"sweeping preset={args.preset!r} over seeds {seeds} "
        f"with jobs={args.jobs} ..."
    )
    summaries = runner.run(
        [
            RunSpec(
                preset=args.preset,
                seed=seed,
                faults=args.faults,
                audit=args.audit,
                crashes=args.crashes,
                scenario=args.scenario,
                chain=args.filters,
            )
            for seed in seeds
        ]
    )
    failed = [s for s in summaries if s.failed]
    for summary in failed:
        print(
            f"seed {summary.seed} failed after retry:\n{summary.error}",
            file=sys.stderr,
        )
    summaries = [s for s in summaries if not s.failed]
    if not summaries:
        print("every run in the sweep failed", file=sys.stderr)
        return 1
    print()
    print(variability.render_sweep(variability.sweep_from_summaries(summaries)))
    print()
    print(
        comparison.render_sweep(comparison.defences_from_summaries(summaries))
    )
    print(
        f"\n{runner.runs_executed} simulated, {runner.cache_hits} from cache, "
        f"{len(failed)} failed"
        + ("" if cache is None else f" ({cache.root}/)")
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.daemon import serve_forever

    return asyncio.run(
        serve_forever(
            args.preset,
            args.seed,
            args.wal,
            host=args.host,
            smtp_port=args.smtp_port,
            web_port=args.web_port,
            endpoints_file=args.endpoints_file,
            time_scale=args.time_scale,
            queue_size=args.queue_size,
            batch_max=args.batch_max,
            engine_delay=args.engine_delay,
        )
    )


def _command_sstress(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve.sstress import StressConfig, run_stress

    report = asyncio.run(
        run_stress(
            StressConfig(
                smtp_port=args.smtp_port,
                host=args.host,
                web_port=args.web_port,
                rate=args.rate,
                messages=args.messages,
                connections=args.connections,
                seed=args.seed,
                scenario=args.scenario,
            )
        )
    )
    rendered = json.dumps(report, indent=2)
    print(rendered)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(rendered + "\n")
    return 0


def _command_scenarios(_args: argparse.Namespace) -> int:
    from repro.scenarios import load_scenario, scenario_dir, scenario_names

    names = scenario_names()
    if not names:
        print(f"no scenarios found under {scenario_dir()}/", file=sys.stderr)
        return 1
    print(f"scenario pack ({scenario_dir()}/):")
    for name in names:
        spec = load_scenario(name)
        print(f"  {name}")
        if spec.description:
            print(f"      {spec.description}")
        attacks = ", ".join(
            f"{a.kind}@{a.company_id} d{a.start_day}+{a.duration_days}"
            for a in spec.attacks
        )
        extras = []
        if spec.faults is not None:
            extras.append(f"faults={spec.faults}")
        if spec.crashes is not None:
            extras.append(f"crashes={spec.crashes}")
        if spec.filters:
            extras.append("filter overrides")
        detail = f"      attacks: {attacks or '(none)'}"
        if extras:
            detail += f"; {'; '.join(extras)}"
        print(detail)
        print(f"      verdict checks: {len(spec.verdicts)}")
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    from repro.scenarios import scenario_names

    print("experiments:")
    for exp_id in sorted(EXPERIMENTS):
        print(f"  {exp_id}")
    print("presets:")
    for preset in preset_names():
        print(f"  {preset}")
    print("scenarios:")
    for name in scenario_names():
        print(f"  {name}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.scenarios import ScenarioError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "experiment":
            return _command_experiment(args)
        if args.command == "company":
            return _command_company(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "sstress":
            return _command_sstress(args)
        if args.command == "scenarios":
            return _command_scenarios(args)
        if args.command == "list":
            return _command_list(args)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 1
