"""SMTP-level primitives: reply codes, envelopes, delivery outcomes."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Reply:
    """The SMTP reply codes our simulated hosts emit."""

    OK = 250
    SERVICE_UNAVAILABLE = 421  # host temporarily not accepting mail (storm)
    DNS_TEMPFAIL = 450  # recipient domain did not resolve (SERVFAIL)
    GREYLISTED = 451  # transient local error — try again later
    CONNECT_FAIL = 0  # could not reach the server at all (treated as 4xx)
    MAILBOX_UNAVAILABLE = 550  # no such user
    RELAY_DENIED = 551
    BLACKLISTED = 554  # rejected: sending IP is on a DNSBL the host uses
    CONTENT_REJECTED = 552

    # Session-management codes only the live asyncio frontend emits — the
    # simulation models per-message verdicts, not the session state machine.
    SERVICE_READY = 220
    CLOSING = 221
    START_MAIL_INPUT = 354
    SYNTAX_ERROR = 500
    PARAM_SYNTAX = 501
    BAD_SEQUENCE = 503


@dataclass(frozen=True)
class SmtpResponse:
    """One server response to a delivery attempt."""

    code: int
    message: str = ""

    @property
    def accepted(self) -> bool:
        return 200 <= self.code < 300

    @property
    def transient(self) -> bool:
        """Transient failures (4xx and connection failures) get retried."""
        return self.code == Reply.CONNECT_FAIL or 400 <= self.code < 500

    @property
    def permanent(self) -> bool:
        return self.code >= 500


@dataclass(frozen=True)
class Envelope:
    """An SMTP envelope: what an MTA actually transmits.

    ``payload_id`` ties the envelope back to whatever higher-level object is
    being delivered (a challenge id in our case); the transport does not
    interpret it.
    """

    mail_from: str
    rcpt_to: str
    size: int
    client_ip: str
    payload_id: Optional[int] = None


#: address -> lowercase domain part. Sender/recipient addresses repeat
#: heavily within a run, so the split is memoised; the cap bounds memory
#: on adversarial workloads (cleared wholesale when full — values depend
#: only on the key, so a refill is always consistent).
_domain_cache: dict[str, str] = {}
_DOMAIN_CACHE_MAX = 65536


def domain_of(address: str) -> str:
    """Lowercase domain part of an address (text after the last ``@``)."""
    domain = _domain_cache.get(address)
    if domain is None:
        if len(_domain_cache) >= _DOMAIN_CACHE_MAX:
            _domain_cache.clear()
        domain = _domain_cache[address] = address.rsplit("@", 1)[-1].lower()
    return domain


class FinalStatus(enum.Enum):
    """Terminal fate of an outbound message after all retries."""

    DELIVERED = "delivered"
    BOUNCED = "bounced"
    EXPIRED = "expired"


class BounceReason(enum.Enum):
    """Why a permanently-rejected message bounced.

    ``NONEXISTENT_RECIPIENT`` and ``BLACKLISTED`` are the two reasons the
    paper's Fig. 4(a) and Fig. 11 analyses key on.
    """

    NONEXISTENT_RECIPIENT = "nonexistent_recipient"
    BLACKLISTED = "blacklisted"
    OTHER = "other"


def bounce_reason_for(code: int) -> BounceReason:
    """Map a permanent SMTP reply code to a bounce-reason category."""
    if code == Reply.MAILBOX_UNAVAILABLE:
        return BounceReason.NONEXISTENT_RECIPIENT
    if code == Reply.BLACKLISTED:
        return BounceReason.BLACKLISTED
    return BounceReason.OTHER
