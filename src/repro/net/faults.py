"""Deterministic fault injection: the "network weather" of the substrate.

The paper's headline artifacts — the delivery-delay tail of Fig. 7, the
challenges "expired after many unsuccessful attempts" of Fig. 4(a), and the
listing/delisting dynamics of §5 — are all produced by an *unreliable*
internet. This module models that unreliability as four fault classes, each
standing in for a failure mode the deployment actually faced:

* **greylisting** — receiving servers that 451 the first attempt from an
  unknown ``(client_ip, mail_from, rcpt_to)`` triple and accept the retry
  (the dominant source of hours-scale challenge delay);
* **4xx storms** — windows during which a host temporarily rejects all
  mail (full queues, rate limiting, "try again later");
* **outages** — windows during which a host does not answer at all
  (connection timeouts, the same signature as a parked domain, but
  transient);
* **DNS episodes** — windows during which a fraction of names SERVFAIL
  (resolver outages, lame delegations).

Plus per-DNSBL **listing/delisting lag**, configured on
:class:`~repro.blacklistd.service.DnsblService` via
:meth:`FaultPlan.dnsbl_lag_for` — real operators neither list nor delist
instantaneously.

Determinism: every decision is derived from ``sha256(seed/kind/key)``, not
from shared stream state, so the weather a domain experiences is a pure
function of ``(seed, settings, domain)`` — independent of query order and
therefore identical between cached and uncached substrate runs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from repro.net.smtp import Envelope, Reply, SmtpResponse
from repro.util.rng import poisson
from repro.util.simtime import DAY, HOUR, MINUTE

#: Length of the "month" used by the per-month fault rates.
MONTH = 30 * DAY


@dataclass(frozen=True)
class FaultSettings:
    """Knobs of one fault-injection configuration (all rates per month)."""

    #: Master switch; a disabled settings object never builds a plan.
    enabled: bool = True
    #: Fraction of remote hosts that greylist unknown sender triples.
    greylist_host_frac: float = 0.35
    #: Expected 4xx storms per host per month.
    storms_per_host_month: float = 1.5
    storm_duration_range: tuple = (1 * HOUR, 8 * HOUR)
    #: Expected full outages per host per month.
    outages_per_host_month: float = 0.5
    outage_duration_range: tuple = (20 * MINUTE, 6 * HOUR)
    #: Expected internet-wide DNS trouble episodes per month.
    dns_episodes_per_month: float = 2.0
    dns_episode_duration_range: tuple = (10 * MINUTE, 2 * HOUR)
    #: Fraction of names that SERVFAIL during a DNS episode.
    dns_failure_frac: float = 0.5
    #: How long an operator takes to publish a new listing.
    dnsbl_listing_lag_range: tuple = (1 * HOUR, 12 * HOUR)
    #: How long past the policy expiry an operator keeps an IP listed.
    dnsbl_delisting_lag_range: tuple = (0.0, 2 * DAY)


#: Named fault configurations, mirroring the scale presets.
FAULT_PRESETS: dict = {
    "off": FaultSettings(
        enabled=False,
        greylist_host_frac=0.0,
        storms_per_host_month=0.0,
        outages_per_host_month=0.0,
        dns_episodes_per_month=0.0,
        dns_failure_frac=0.0,
        dnsbl_listing_lag_range=(0.0, 0.0),
        dnsbl_delisting_lag_range=(0.0, 0.0),
    ),
    "mild": FaultSettings(
        greylist_host_frac=0.20,
        storms_per_host_month=0.7,
        outages_per_host_month=0.25,
        dns_episodes_per_month=1.0,
        dns_failure_frac=0.3,
        dnsbl_listing_lag_range=(1 * HOUR, 6 * HOUR),
        dnsbl_delisting_lag_range=(0.0, 1 * DAY),
    ),
    "stormy": FaultSettings(
        greylist_host_frac=0.50,
        storms_per_host_month=3.0,
        outages_per_host_month=1.0,
        dns_episodes_per_month=4.0,
        dns_failure_frac=0.6,
        dnsbl_listing_lag_range=(4 * HOUR, 18 * HOUR),
        dnsbl_delisting_lag_range=(12 * HOUR, 3 * DAY),
    ),
}


def get_fault_preset(name: str) -> FaultSettings:
    """Look up a named fault preset (:data:`FAULT_PRESETS`)."""
    try:
        return FAULT_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault preset {name!r}; available: {sorted(FAULT_PRESETS)}"
        ) from None


def fault_preset_names() -> list:
    return sorted(FAULT_PRESETS)


@dataclass
class FaultCounters:
    """How often each fault class actually fired during a run."""

    greylist_deferrals: int = 0
    storm_rejections: int = 0
    outage_failures: int = 0
    dns_failures: int = 0


class DnsTemporaryFailure(Exception):
    """SERVFAIL/timeout: the name may exist but cannot be resolved *now*.

    Deliberately not a :class:`~repro.net.smtp.SmtpResponse` — callers must
    make an explicit policy decision (retry later, skip the check), and an
    exception cannot be accidentally cached as a routing result.
    """


class FaultPlan:
    """The seeded weather schedule of one simulation run.

    Host fault windows are materialised lazily, one hash-seeded draw per
    domain, so the plan costs nothing for domains that never receive mail
    and the schedule does not depend on delivery order.
    """

    def __init__(
        self,
        settings: FaultSettings,
        seed: int,
        horizon: float,
        clock,
    ) -> None:
        self.settings = settings
        self.seed = int(seed)
        self.horizon = float(horizon)
        #: Anything with a ``now`` attribute (the :class:`Simulator`);
        #: needed because DNS lookups carry no timestamp parameter.
        self.clock = clock
        self.counters = FaultCounters()
        #: domain -> (outage windows, storm windows), each a sorted list
        #: of (start, end) pairs.
        self._host_windows: dict = {}
        #: domain -> whether that host greylists unknown triples.
        self._greylisting_hosts: dict = {}
        #: (client_ip, mail_from, rcpt_to) triples already deferred once.
        self._seen_triples: set = set()
        #: Internet-wide DNS trouble windows: (start, end, failure_frac).
        self._dns_episodes: list = self._draw_dns_episodes()

    # -- deterministic derivation ---------------------------------------

    def _rng(self, kind: str, key: str = "") -> random.Random:
        digest = hashlib.sha256(
            f"{self.seed}/{kind}/{key}".encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _frac(self, kind: str, key: str) -> float:
        """Uniform [0, 1) hash of ``(seed, kind, key)``."""
        digest = hashlib.sha256(
            f"{self.seed}/{kind}/{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _draw_windows(
        self, rng: random.Random, per_month: float, duration_range: tuple
    ) -> list:
        count = poisson(rng, per_month * self.horizon / MONTH)
        windows = []
        for _ in range(count):
            start = rng.uniform(0.0, self.horizon)
            windows.append((start, start + rng.uniform(*duration_range)))
        windows.sort()
        return windows

    def _draw_dns_episodes(self) -> list:
        rng = self._rng("dns-episodes")
        windows = self._draw_windows(
            rng,
            self.settings.dns_episodes_per_month,
            self.settings.dns_episode_duration_range,
        )
        return [(start, end, self.settings.dns_failure_frac) for start, end in windows]

    def _windows_for(self, domain: str) -> tuple:
        windows = self._host_windows.get(domain)
        if windows is None:
            outages = self._draw_windows(
                self._rng("outage", domain),
                self.settings.outages_per_host_month,
                self.settings.outage_duration_range,
            )
            storms = self._draw_windows(
                self._rng("storm", domain),
                self.settings.storms_per_host_month,
                self.settings.storm_duration_range,
            )
            windows = self._host_windows[domain] = (outages, storms)
        return windows

    @staticmethod
    def _covered(windows: list, now: float) -> bool:
        for start, end in windows:
            if start > now:
                return False  # sorted: no later window can cover now
            if now < end:
                return True
        return False

    # -- test/debug overrides -------------------------------------------

    def force_weather(
        self, domain: str, *, outages: tuple = (), storms: tuple = ()
    ) -> None:
        """Pin *domain*'s fault windows explicitly (tests, what-ifs)."""
        self._host_windows[domain.lower()] = (
            sorted(tuple(w) for w in outages),
            sorted(tuple(w) for w in storms),
        )

    def force_dns_episode(
        self, start: float, end: float, failure_frac: float = 1.0
    ) -> None:
        """Append an explicit DNS trouble window (tests, what-ifs)."""
        self._dns_episodes.append((start, end, failure_frac))
        self._dns_episodes.sort()

    # -- queries made by the substrate ----------------------------------

    def weather(self, domain: str, now: float) -> Optional[SmtpResponse]:
        """The transient failure *domain* is suffering at *now*, if any.

        Checked by :meth:`RemoteMailHost.deliver` before any host policy:
        a host in an outage or storm window rejects everything.
        """
        outages, storms = self._windows_for(domain)
        if self._covered(outages, now):
            self.counters.outage_failures += 1
            return SmtpResponse(
                Reply.CONNECT_FAIL, f"connection to {domain} timed out (outage)"
            )
        if self._covered(storms, now):
            self.counters.storm_rejections += 1
            return SmtpResponse(
                Reply.SERVICE_UNAVAILABLE,
                "4.3.2 system not accepting network messages",
            )
        return None

    def greylist_defer(self, domain: str, envelope: Envelope) -> bool:
        """True when this attempt should get a 451 greylist deferral.

        Classic triple-based greylisting: the first attempt from an unknown
        ``(client_ip, mail_from, rcpt_to)`` triple is deferred, the retry
        (same triple, 15 min later under the default schedule) passes.
        """
        if self._frac("greylist-host", domain) >= self.settings.greylist_host_frac:
            return False
        triple = (envelope.client_ip, envelope.mail_from, envelope.rcpt_to)
        if triple in self._seen_triples:
            return False
        self._seen_triples.add(triple)
        self.counters.greylist_deferrals += 1
        return True

    def dns_unavailable(self, name: str) -> bool:
        """True when resolving *name* SERVFAILs at the current sim time.

        Pure (no counter side effects): callers may probe the same name
        twice in one code path; counting happens at the raise site
        (:meth:`Resolver.check_available`).
        """
        if not self._dns_episodes:
            return False
        now = self.clock.now
        for start, end, frac in self._dns_episodes:
            if start > now:
                return False
            if now < end:
                # Which names fail is a per-episode hash draw, so an
                # episode hits a stable subset of the namespace.
                key = f"{start}/{name}"
                if self._frac("dns-fail", key) < frac:
                    return True
        return False

    def dnsbl_lag_for(self, service_name: str) -> tuple:
        """Deterministic ``(listing_lag, delisting_lag)`` for one operator."""
        rng = self._rng("dnsbl-lag", service_name)
        listing = rng.uniform(*self.settings.dnsbl_listing_lag_range)
        delisting = rng.uniform(*self.settings.dnsbl_delisting_lag_range)
        return listing, delisting
