"""Remote mail hosts: the servers our challenges get delivered to.

Each host models one receiving domain on the simulated internet. Hosts can:

* accept mail for known mailboxes and 550-reject unknown ones (the source of
  the "non-existent recipient" bounces in Fig. 4(a));
* act as a catch-all (accept any local part), like many small 2010 domains;
* subscribe to DNSBL services and 554-reject mail whose sending IP is
  currently listed — the mechanism by which a blacklisted challenge server
  *observes* that it is blacklisted (Fig. 11);
* be permanently unreachable while still resolving in DNS ("parked" MX
  records spammers forge), producing the retry-until-expiry outcomes;
* invoke an ``on_delivered`` hook — spam-trap hosts use it to report the
  sending IP to their DNSBL operator, and workload hosts use it to trigger
  sender behaviour (opening/solving CAPTCHAs).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.net.smtp import Envelope, Reply, SmtpResponse

DeliveredHook = Callable[[Envelope, float], None]


class RemoteMailHost:
    """A receiving mail server for one domain."""

    def __init__(
        self,
        domain: str,
        ip: str,
        *,
        mailboxes: Optional[set[str]] = None,
        catch_all: bool = False,
        reachable: bool = True,
        greylisting: bool = False,
        dnsbl_services: Sequence[object] = (),
        on_delivered: Optional[DeliveredHook] = None,
    ) -> None:
        self.domain = domain.lower()
        self.ip = ip
        self.mailboxes: set[str] = mailboxes if mailboxes is not None else set()
        self.catch_all = catch_all
        self.reachable = reachable
        #: Classic greylisting: the first delivery attempt from a
        #: previously-unseen client IP gets a 451; the retry passes.
        self.greylisting = greylisting
        self.dnsbl_services = list(dnsbl_services)
        self.on_delivered = on_delivered
        #: Fault-injection schedule (:class:`repro.net.faults.FaultPlan`)
        #: or ``None``; installed by ``Internet.install_fault_plan``.
        self.fault_plan = None
        self.accepted_count = 0
        self.rejected_count = 0
        self.greylisted_count = 0
        self._seen_client_ips: set[str] = set()

    def add_mailbox(self, local: str) -> None:
        self.mailboxes.add(local)

    def has_mailbox(self, local: str) -> bool:
        return self.catch_all or local in self.mailboxes

    def deliver(self, envelope: Envelope, now: float) -> SmtpResponse:
        """Attempt delivery of *envelope* at simulated time *now*."""
        plan = self.fault_plan
        if plan is not None:
            # Outages and 4xx storms strike before any host policy runs —
            # an unreachable or overloaded server rejects everything.
            weather = plan.weather(self.domain, now)
            if weather is not None:
                return weather
        if not self.reachable:
            return SmtpResponse(Reply.CONNECT_FAIL, "connection timed out")
        for service in self.dnsbl_services:
            if service.is_listed(envelope.client_ip, now):
                self.rejected_count += 1
                return SmtpResponse(
                    Reply.BLACKLISTED,
                    f"5.7.1 rejected: {envelope.client_ip} listed by {service.name}",
                )
        local = envelope.rcpt_to.split("@", 1)[0]
        if not self.has_mailbox(local):
            self.rejected_count += 1
            return SmtpResponse(
                Reply.MAILBOX_UNAVAILABLE, f"5.1.1 no such user: {envelope.rcpt_to}"
            )
        if self.greylisting and envelope.client_ip not in self._seen_client_ips:
            self._seen_client_ips.add(envelope.client_ip)
            self.greylisted_count += 1
            return SmtpResponse(
                Reply.GREYLISTED, "4.2.0 greylisted, try again later"
            )
        if plan is not None and plan.greylist_defer(self.domain, envelope):
            # Fault-injected triple greylisting: first attempt from an
            # unknown (client_ip, mail_from, rcpt_to) gets 451, retry passes.
            self.greylisted_count += 1
            return SmtpResponse(
                Reply.GREYLISTED, "4.2.0 greylisted (unknown triple), try later"
            )
        self.accepted_count += 1
        if self.on_delivered is not None:
            self.on_delivered(envelope, now)
        return SmtpResponse(Reply.OK, "message accepted")
