"""Outbound MTA: queued delivery with a retry schedule and expiry.

This is the component whose IP address appears on the wire — and therefore
the component that gets blacklisted when challenges hit spam traps (§5.1).
A third of the paper's installations ran *two* outbound MTAs with distinct
IPs (one for challenges, one for user mail); :class:`repro.core.engine`
models that by instantiating two ``OutboundMta`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional, Sequence

from repro.net.internet import Internet
from repro.net.smtp import (
    BounceReason,
    Envelope,
    FinalStatus,
    Reply,
    SmtpResponse,
    bounce_reason_for,
)
from repro.sim.engine import Simulator
from repro.util.simtime import DAY, HOUR, MINUTE

#: Classic sendmail-style backoff: immediate attempt, then increasingly
#: spaced retries. A message that is still failing transiently after the
#: last retry expires (returned to sender in real life; recorded as EXPIRED
#: here, matching the paper's "expired after many unsuccessful attempts").
DEFAULT_RETRY_DELAYS: tuple[float, ...] = (
    15 * MINUTE,
    1 * HOUR,
    4 * HOUR,
    12 * HOUR,
    1 * DAY,
    2 * DAY,
)


@dataclass(frozen=True)
class DeliveryResult:
    """Terminal outcome of one outbound message."""

    status: FinalStatus
    bounce_reason: Optional[BounceReason]
    attempts: int
    t_final: float
    last_code: int

    @property
    def delivered(self) -> bool:
        return self.status is FinalStatus.DELIVERED


FinalCallback = Callable[[Envelope, DeliveryResult], None]


class _InFlight:
    """Book-keeping for one queued message between send and its terminal
    status."""

    __slots__ = ("envelope", "on_final", "attempts", "last_code", "retry_event")

    def __init__(self, envelope: Envelope, on_final: FinalCallback) -> None:
        self.envelope = envelope
        self.on_final = on_final
        self.attempts = 0
        self.last_code = Reply.CONNECT_FAIL
        self.retry_event = None


class OutboundMta:
    """A sending MTA bound to one source IP.

    Delivery conservation is this class's contract: every envelope handed
    to :meth:`send` reaches **exactly one** terminal status — DELIVERED,
    BOUNCED, or EXPIRED — and fires ``on_final`` exactly once, regardless
    of faults or of when the simulation clock stops. The queue is tracked
    explicitly (``in_flight``), so a truncated run can :meth:`drain` the
    stragglers instead of silently losing them, and
    ``sent_messages == delivered + bounced + expired + in_flight``
    holds at every instant.
    """

    def __init__(
        self,
        name: str,
        ip: str,
        simulator: Simulator,
        internet: Internet,
        retry_delays: Sequence[float] = DEFAULT_RETRY_DELAYS,
    ) -> None:
        self.name = name
        self.ip = ip
        self.simulator = simulator
        self.internet = internet
        self.retry_delays = tuple(retry_delays)
        self.sent_messages = 0
        self.sent_bytes = 0
        self.blacklist_bounces = 0
        self.delivered = 0
        self.bounced = 0
        self.expired = 0
        #: Retries scheduled after transient failures, lifetime total.
        self.retries_scheduled = 0
        #: Messages finalized by :meth:`drain` (subset of ``expired``).
        self.drained = 0
        self._in_flight: dict[int, _InFlight] = {}
        self._next_token = 0
        #: Crash-fault schedule (:class:`repro.net.crashes.CrashPlan`) or
        #: ``None``; installed by ``CrashPlan.arm``. When set, attempts
        #: landing inside this MTA's downtime windows are deferred to the
        #: recovery instant instead of hitting the wire.
        self.crash_plan = None
        #: Company id used as the crash-schedule scope key.
        self.crash_scope = ""
        #: In-flight messages re-driven from the journal after crashes.
        self.redriven = 0

    @property
    def in_flight(self) -> int:
        """Messages queued but not yet at a terminal status."""
        return len(self._in_flight)

    def send(self, envelope: Envelope, on_final: FinalCallback) -> None:
        """Queue *envelope* for delivery; *on_final* fires exactly once."""
        # The MTA stamps its own IP on the wire regardless of what the
        # caller put in the envelope.
        stamped = Envelope(
            mail_from=envelope.mail_from,
            rcpt_to=envelope.rcpt_to,
            size=envelope.size,
            client_ip=self.ip,
            payload_id=envelope.payload_id,
        )
        self.sent_messages += 1
        self.sent_bytes += stamped.size
        token = self._next_token
        self._next_token += 1
        self._in_flight[token] = _InFlight(stamped, on_final)
        self._attempt(token)

    def _attempt(self, token: int) -> None:
        entry = self._in_flight[token]
        entry.retry_event = None
        now = self.simulator.now
        if self.crash_plan is not None:
            # The MTA process is down: the queue entry is durable, so the
            # attempt simply waits for the restart (no retry slot burned,
            # no attempt counted — nothing reached the wire).
            delay = self.crash_plan.outbound_defer(self.crash_scope, token, now)
            if delay is not None:
                entry.retry_event = self.simulator.schedule_after(
                    delay,
                    partial(self._attempt, token),
                    label=f"crash-redrive:{self.name}",
                )
                return
        response = self.internet.submit(entry.envelope, now)
        entry.attempts += 1
        entry.last_code = response.code
        if response.accepted:
            self._finalize(token, FinalStatus.DELIVERED, None, now)
            return
        if response.permanent:
            reason = bounce_reason_for(response.code)
            if reason is BounceReason.BLACKLISTED:
                self.blacklist_bounces += 1
            self._finalize(token, FinalStatus.BOUNCED, reason, now)
            return
        # Transient failure: retry per schedule, else expire.
        delay = self._retry_delay(entry.attempts, token)
        if delay is not None:
            self.retries_scheduled += 1
            entry.retry_event = self.simulator.schedule_after(
                delay,
                partial(self._attempt, token),
                label=f"retry:{self.name}",
            )
            return
        self._finalize(token, FinalStatus.EXPIRED, None, now)

    def _retry_delay(self, attempts: int, token: int) -> Optional[float]:
        """Delay before retry number *attempts*, or ``None`` to expire.

        The default is the fixed sendmail-style table; subclasses (the live
        frontend's exponential-backoff-with-jitter policy) override this
        single choke point so the queueing, conservation, and crash
        machinery stay shared.
        """
        if attempts <= len(self.retry_delays):
            return self.retry_delays[attempts - 1]
        return None

    def _finalize(
        self,
        token: int,
        status: FinalStatus,
        reason: Optional[BounceReason],
        t_final: float,
    ) -> None:
        entry = self._in_flight.pop(token)
        if status is FinalStatus.DELIVERED:
            self.delivered += 1
        elif status is FinalStatus.BOUNCED:
            self.bounced += 1
        else:
            self.expired += 1
        entry.on_final(
            entry.envelope,
            DeliveryResult(status, reason, entry.attempts, t_final, entry.last_code),
        )

    def drain(self) -> int:
        """Finalize every in-flight message as EXPIRED at the current time.

        A run truncated at ``run(until=...)`` leaves retries scheduled past
        the horizon; without this step those messages never reach a
        terminal status and flow accounting silently undercounts. Call
        after the clock has stopped for good. Returns how many messages
        were force-expired (zero for a fully drained queue).
        """
        count = 0
        for token in sorted(self._in_flight):
            entry = self._in_flight[token]
            if entry.retry_event is not None:
                entry.retry_event.cancel()
                entry.retry_event = None
            self.drained += 1
            count += 1
            self._finalize(token, FinalStatus.EXPIRED, None, self.simulator.now)
        return count

    def crash_recover(self, recovery_at: float, jitter: Callable[[int], float]) -> int:
        """Journal replay after a process crash (journaled durability).

        The in-flight ledger *is* this MTA's write-ahead journal: every
        queued message, its attempt count, and its last response code are
        durable. A crash loses only the scheduled retry timers, so
        recovery cancels whatever timers still exist and re-drives every
        in-flight message shortly after the restart at *recovery_at*
        (*jitter* spreads the replay burst deterministically per token).
        Attempt counts are preserved — a replay is not a fresh send.
        Returns how many messages were re-driven.
        """
        count = 0
        for token in sorted(self._in_flight):
            entry = self._in_flight[token]
            if entry.retry_event is not None:
                entry.retry_event.cancel()
                entry.retry_event = None
            entry.retry_event = self.simulator.schedule(
                recovery_at + jitter(token),
                partial(self._attempt, token),
                label=f"crash-redrive:{self.name}",
            )
            count += 1
        self.redriven += count
        return count

    def crash_lose(self) -> int:
        """Crash with *lossy* durability: the queue was volatile, so every
        in-flight message vanishes without ever reaching a terminal
        status. This deliberately breaks the delivery-conservation
        contract — it exists so tests can prove the conservation oracle
        actually detects lost mail. Returns how many messages were lost.
        """
        lost = len(self._in_flight)
        for entry in self._in_flight.values():
            if entry.retry_event is not None:
                entry.retry_event.cancel()
                entry.retry_event = None
        self._in_flight.clear()
        return lost

    def observed_response(self, response: SmtpResponse) -> None:  # pragma: no cover
        """Hook kept for symmetry with real MTAs' logging; unused."""
