"""Outbound MTA: queued delivery with a retry schedule and expiry.

This is the component whose IP address appears on the wire — and therefore
the component that gets blacklisted when challenges hit spam traps (§5.1).
A third of the paper's installations ran *two* outbound MTAs with distinct
IPs (one for challenges, one for user mail); :class:`repro.core.engine`
models that by instantiating two ``OutboundMta`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.net.internet import Internet
from repro.net.smtp import (
    BounceReason,
    Envelope,
    FinalStatus,
    SmtpResponse,
    bounce_reason_for,
)
from repro.sim.engine import Simulator
from repro.util.simtime import DAY, HOUR, MINUTE

#: Classic sendmail-style backoff: immediate attempt, then increasingly
#: spaced retries. A message that is still failing transiently after the
#: last retry expires (returned to sender in real life; recorded as EXPIRED
#: here, matching the paper's "expired after many unsuccessful attempts").
DEFAULT_RETRY_DELAYS: tuple[float, ...] = (
    15 * MINUTE,
    1 * HOUR,
    4 * HOUR,
    12 * HOUR,
    1 * DAY,
    2 * DAY,
)


@dataclass(frozen=True)
class DeliveryResult:
    """Terminal outcome of one outbound message."""

    status: FinalStatus
    bounce_reason: Optional[BounceReason]
    attempts: int
    t_final: float
    last_code: int

    @property
    def delivered(self) -> bool:
        return self.status is FinalStatus.DELIVERED


FinalCallback = Callable[[Envelope, DeliveryResult], None]


class OutboundMta:
    """A sending MTA bound to one source IP."""

    def __init__(
        self,
        name: str,
        ip: str,
        simulator: Simulator,
        internet: Internet,
        retry_delays: Sequence[float] = DEFAULT_RETRY_DELAYS,
    ) -> None:
        self.name = name
        self.ip = ip
        self.simulator = simulator
        self.internet = internet
        self.retry_delays = tuple(retry_delays)
        self.sent_messages = 0
        self.sent_bytes = 0
        self.blacklist_bounces = 0

    def send(self, envelope: Envelope, on_final: FinalCallback) -> None:
        """Queue *envelope* for delivery; *on_final* fires exactly once."""
        # The MTA stamps its own IP on the wire regardless of what the
        # caller put in the envelope.
        stamped = Envelope(
            mail_from=envelope.mail_from,
            rcpt_to=envelope.rcpt_to,
            size=envelope.size,
            client_ip=self.ip,
            payload_id=envelope.payload_id,
        )
        self.sent_messages += 1
        self.sent_bytes += stamped.size
        self._attempt(stamped, attempt_index=0, on_final=on_final)

    def _attempt(
        self, envelope: Envelope, attempt_index: int, on_final: FinalCallback
    ) -> None:
        now = self.simulator.now
        response = self.internet.submit(envelope, now)
        attempts = attempt_index + 1
        if response.accepted:
            on_final(
                envelope,
                DeliveryResult(
                    FinalStatus.DELIVERED, None, attempts, now, response.code
                ),
            )
            return
        if response.permanent:
            reason = bounce_reason_for(response.code)
            if reason is BounceReason.BLACKLISTED:
                self.blacklist_bounces += 1
            on_final(
                envelope,
                DeliveryResult(
                    FinalStatus.BOUNCED, reason, attempts, now, response.code
                ),
            )
            return
        # Transient failure: retry per schedule, else expire.
        if attempt_index < len(self.retry_delays):
            delay = self.retry_delays[attempt_index]
            self.simulator.schedule_after(
                delay,
                lambda: self._attempt(envelope, attempt_index + 1, on_final),
                label=f"retry:{self.name}",
            )
            return
        on_final(
            envelope,
            DeliveryResult(FinalStatus.EXPIRED, None, attempts, now, response.code),
        )

    def observed_response(self, response: SmtpResponse) -> None:  # pragma: no cover
        """Hook kept for symmetry with real MTAs' logging; unused."""
