"""Simulated internet substrate: addressing, DNS, SMTP routing, remote hosts.

The challenge-response product under study talks to the outside world through
this package: it resolves sender domains at the inbound MTA, and it delivers
challenge emails through :class:`repro.net.mta_out.OutboundMta`, which routes
them over :class:`repro.net.internet.Internet` to
:class:`repro.net.hosts.RemoteMailHost` instances (real senders, innocent
third parties, spam traps, or dead servers).
"""

from repro.net.addresses import Address, AddressError, is_well_formed, parse_address
from repro.net.dns import DnsRegistry, Resolver
from repro.net.hosts import RemoteMailHost
from repro.net.internet import Internet
from repro.net.mta_out import DeliveryResult, OutboundMta
from repro.net.smtp import (
    BounceReason,
    Envelope,
    FinalStatus,
    SmtpResponse,
)

__all__ = [
    "Address",
    "AddressError",
    "parse_address",
    "is_well_formed",
    "DnsRegistry",
    "Resolver",
    "RemoteMailHost",
    "Internet",
    "OutboundMta",
    "DeliveryResult",
    "SmtpResponse",
    "Envelope",
    "FinalStatus",
    "BounceReason",
]
