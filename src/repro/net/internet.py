"""The message router: finds the MX for a recipient domain and hands the
envelope to the responsible :class:`~repro.net.hosts.RemoteMailHost`."""

from __future__ import annotations

from typing import Optional, Union

from repro.net.dns import DnsRegistry, DnsTemporaryFailure, Resolver
from repro.net.hosts import RemoteMailHost
from repro.net.smtp import Envelope, Reply, SmtpResponse, domain_of


class _NoRoute:
    """Sentinel routing decision: the domain does not resolve at all."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_ROUTE"

    def __reduce__(self):
        # The sentinel is compared by identity (``route is NO_ROUTE``), so
        # a pickled route cache must unpickle to the module singleton —
        # not a fresh instance — for checkpoint/restore to route
        # identically.
        return (_restore_no_route, ())


def _restore_no_route() -> "_NoRoute":
    return NO_ROUTE


#: Routing decision for a recipient domain with no MX/A records.
NO_ROUTE = _NoRoute()


class Internet:
    """Registry of remote hosts plus MX-based routing.

    Routing semantics mirror what a sending MTA experiences:

    * recipient domain has no MX/A records → permanent failure (no route);
    * domain resolves but no server answers (spammers forging "parked"
      domains, or a registered-but-unreachable host) → connection failure,
      which the sender retries until expiry;
    * otherwise, the host's own policy decides (250 / 550 / 554 / ...).

    The per-domain routing decision is cached: it only depends on the
    domain's A/MX records and the host registry, so it is invalidated by
    :meth:`register_host` and by DNS changes to those record types (via the
    registry's change notifications) and stays warm for everything else.
    """

    #: Class-wide switch so tests can compare cached vs uncached runs.
    CACHE_ENABLED = True

    def __init__(self, resolver: Resolver) -> None:
        self.resolver = resolver
        self._hosts_by_domain: dict[str, RemoteMailHost] = {}
        self._route_cache: dict[
            str, Union[RemoteMailHost, _NoRoute, None]
        ] = {}
        self.envelopes_routed = 0
        self.bytes_routed = 0
        self.route_hits = 0
        self.route_misses = 0
        #: Fault-injection schedule (:class:`repro.net.faults.FaultPlan`)
        #: or ``None``; installed by ``World.install_fault_plan``.
        self.fault_plan = None
        resolver.registry.subscribe(self._on_dns_change)

    def _on_dns_change(self, key: tuple[str, str]) -> None:
        name, rtype = key
        if rtype in (DnsRegistry.A, DnsRegistry.MX):
            self._route_cache.pop(name, None)

    def register_host(self, host: RemoteMailHost) -> None:
        if host.domain in self._hosts_by_domain:
            raise ValueError(f"duplicate host for domain {host.domain}")
        self._hosts_by_domain[host.domain] = host
        self._route_cache.pop(host.domain, None)
        if self.fault_plan is not None:
            host.fault_plan = self.fault_plan

    def install_fault_plan(self, plan) -> None:
        """Attach *plan* to this router and every (current and future)
        registered host."""
        self.fault_plan = plan
        for host in self._hosts_by_domain.values():
            host.fault_plan = plan

    def hosts(self):
        """All registered remote hosts, in registration order."""
        return self._hosts_by_domain.values()

    def host_for(self, domain: str) -> Optional[RemoteMailHost]:
        return self._hosts_by_domain.get(domain.lower())

    def route_for(
        self, domain: str
    ) -> Union[RemoteMailHost, _NoRoute, None]:
        """Routing decision for *domain*: the responsible host,
        :data:`NO_ROUTE` (unresolvable), or ``None`` (resolvable but
        nobody answers).

        The domain is lowercased here, once, at the boundary — host
        registration and the route cache are all lowercase-keyed, so a
        mixed-case caller must not get a spurious miss plus a poisoned
        mixed-case cache entry.

        Raises :class:`DnsTemporaryFailure` during an injected DNS episode
        covering *domain*. The availability check runs **before** the
        cache: a transient failure is never stored as ``NO_ROUTE``, and a
        warm cache entry does not mask the outage (cached and uncached
        runs must fail identically).
        """
        domain = domain.lower()
        self.resolver.check_available(domain)
        if not Internet.CACHE_ENABLED:
            return self._compute_route(domain)
        try:
            route = self._route_cache[domain]
        except KeyError:
            self.route_misses += 1
            route = self._route_cache[domain] = self._compute_route(domain)
        else:
            self.route_hits += 1
        return route

    def _compute_route(
        self, domain: str
    ) -> Union[RemoteMailHost, _NoRoute, None]:
        if not self.resolver.resolves(domain):
            return NO_ROUTE
        return self._hosts_by_domain.get(domain)

    def submit(self, envelope: Envelope, now: float) -> SmtpResponse:
        """Route one delivery attempt and return the server's response."""
        self.envelopes_routed += 1
        self.bytes_routed += envelope.size
        domain = domain_of(envelope.rcpt_to)
        try:
            route = self.route_for(domain)
        except DnsTemporaryFailure:
            # SERVFAIL is transient: the sender keeps the message queued
            # and retries, exactly like a connection failure.
            return SmtpResponse(
                Reply.DNS_TEMPFAIL, f"4.4.3 cannot resolve {domain} (SERVFAIL)"
            )
        if route is NO_ROUTE:
            return SmtpResponse(
                Reply.MAILBOX_UNAVAILABLE, f"5.4.4 no route to {domain}"
            )
        if route is None:
            # Resolvable in DNS but nobody answers: forged/parked domain.
            return SmtpResponse(Reply.CONNECT_FAIL, f"cannot connect to {domain}")
        return route.deliver(envelope, now)
