"""The message router: finds the MX for a recipient domain and hands the
envelope to the responsible :class:`~repro.net.hosts.RemoteMailHost`."""

from __future__ import annotations

from typing import Optional

from repro.net.dns import Resolver
from repro.net.hosts import RemoteMailHost
from repro.net.smtp import Envelope, Reply, SmtpResponse


class Internet:
    """Registry of remote hosts plus MX-based routing.

    Routing semantics mirror what a sending MTA experiences:

    * recipient domain has no MX/A records → permanent failure (no route);
    * domain resolves but no server answers (spammers forging "parked"
      domains, or a registered-but-unreachable host) → connection failure,
      which the sender retries until expiry;
    * otherwise, the host's own policy decides (250 / 550 / 554 / ...).
    """

    def __init__(self, resolver: Resolver) -> None:
        self.resolver = resolver
        self._hosts_by_domain: dict[str, RemoteMailHost] = {}
        self.envelopes_routed = 0
        self.bytes_routed = 0

    def register_host(self, host: RemoteMailHost) -> None:
        if host.domain in self._hosts_by_domain:
            raise ValueError(f"duplicate host for domain {host.domain}")
        self._hosts_by_domain[host.domain] = host

    def host_for(self, domain: str) -> Optional[RemoteMailHost]:
        return self._hosts_by_domain.get(domain.lower())

    def submit(self, envelope: Envelope, now: float) -> SmtpResponse:
        """Route one delivery attempt and return the server's response."""
        self.envelopes_routed += 1
        self.bytes_routed += envelope.size
        domain = envelope.rcpt_to.rsplit("@", 1)[-1].lower()
        if not self.resolver.resolves(domain):
            return SmtpResponse(
                Reply.MAILBOX_UNAVAILABLE, f"5.4.4 no route to {domain}"
            )
        host = self._hosts_by_domain.get(domain)
        if host is None:
            # Resolvable in DNS but nobody answers: forged/parked domain.
            return SmtpResponse(Reply.CONNECT_FAIL, f"cannot connect to {domain}")
        return host.deliver(envelope, now)
