"""The cross-shard SMTP exchange: partitioning and epoch manifests.

A sharded run (§12 of DESIGN.md) splits the deployment's companies across
N worker processes. Each worker replays the *whole* world's trace draws —
the generator's RNG streams are consumed identically everywhere, so
message ids and arrival times agree across shards by construction — but
only materialises, prechecks, and delivers the messages owned by its own
companies. What crosses shard boundaries is therefore not mail payloads
(every shard can rebuild any message from the shared draw sequence) but
*manifests*: per simulated-day epoch, each shard records the ``(time,
msg_id)`` stream bound for every shard, batched per epoch and hashed in
deterministic ``(time, msg_id)`` order regardless of worker scheduling.

The driver reconciles the manifests at the end of the run: for every
``(owner shard, epoch)`` cell, all N shards must have computed the same
row count and digest. Any divergence — a worker whose replicated world
drifted, a draw consumed out of order, a partition disagreement — is
caught as an :class:`ExchangeDivergence` before the per-shard stores are
merged, making the exchange a replica-consistency oracle for the whole
sharded data plane.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.entities import World


class ExchangeDivergence(RuntimeError):
    """Two shards disagree about an epoch's cross-shard mail stream."""


@dataclass(frozen=True)
class ShardMap:
    """Deterministic assignment of companies to shards.

    Built by greedy bin-packing on each company's *expected daily mail
    volume* (largest first, ties broken by company order) — computed from
    the replicated world, so every shard derives the identical map
    locally with no coordination. User count alone is a poor weight: the
    presets give every company the same headcount while per-company
    spam/legit multipliers spread actual volume severalfold, and the
    engine work a shard pays for is proportional to the rows it owns.
    """

    n_shards: int
    #: company_id -> shard index.
    owners: dict

    @staticmethod
    def _expected_volume(world: "World", company) -> float:
        """Expected inbound messages/day, from the calibration rates the
        generator itself draws from (arbitrary consistent units — only
        ratios between companies matter for the packing)."""
        cal = world.calibration
        spam_mix = 1.0 + cal.spam_unknown_recipient_factor + cal.spam_foreign_factor
        if company.config.open_relay:
            spam_mix += cal.relay_spam_factor
        per_user = (
            cal.spam_valid_rate * company.spam_multiplier * spam_mix
            + cal.white_rate * company.legit_multiplier
            + cal.black_rate
            + cal.newsletter_rate
            + cal.dsn_rate
        )
        return company.n_users * per_user

    @classmethod
    def from_world(cls, world: "World", n_shards: int) -> "ShardMap":
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        # Stable sort: descending expected volume, original company order
        # for equal weights. Every shard computes this identically.
        weighted = sorted(
            (
                (cls._expected_volume(world, company), company)
                for company in world.companies
            ),
            key=lambda pair: -pair[0],
        )
        loads = [0.0] * n_shards
        owners: dict = {}
        for weight, company in weighted:
            shard = loads.index(min(loads))
            owners[company.company_id] = shard
            loads[shard] += weight
        return cls(n_shards=n_shards, owners=owners)

    def owner_of(self, company_id: str) -> int:
        return self.owners[company_id]

    def local_companies(self, shard_index: int) -> list:
        return [
            company_id
            for company_id, owner in self.owners.items()
            if owner == shard_index
        ]


@dataclass
class ShardExchange:
    """One worker's view of the exchange: per-epoch outbox manifests.

    ``open_epoch``/``record``/``close_epoch`` bracket one planning day.
    Rows arrive already sorted by ``(t, msg_id)`` (the day batch is
    finalised time-sorted, ids ascend in generation order for equal
    times). ``record`` only appends into per-owner time/id columns;
    ``close_epoch`` packs each column pair once and hashes it in a
    single sweep — per-row hasher updates cost real seconds at millions
    of rows/day and this is the sharded hot loop. Columns are dropped at
    close, so the finished manifest is a small picklable dict, safe to
    checkpoint between planning days.
    """

    n_shards: int
    shard_index: int
    #: (owner shard, epoch day) -> (row count, stream digest hex).
    manifests: dict = field(default_factory=dict)
    local_rows: int = 0
    remote_rows: int = 0
    _open: Optional[tuple] = None

    def open_epoch(self, day: int) -> None:
        self._open = (
            day,
            [([], []) for _ in range(self.n_shards)],
        )

    def record(self, t: float, msg_id: int, owner: int) -> None:
        ts, ids = self._open[1][owner]
        ts.append(t)
        ids.append(msg_id)

    @property
    def open_cells(self) -> list:
        """Per-owner ``(times, ids)`` columns of the open epoch, for the
        dispatch hot loop to append into directly (one attribute lookup
        instead of millions of ``record`` calls)."""
        return self._open[1]

    def close_epoch(self) -> None:
        day, cells = self._open
        for owner, (ts, ids) in enumerate(cells):
            n = len(ts)
            if not n:
                continue
            digest = hashlib.sha256(
                struct.pack(f"<{n}d", *ts) + struct.pack(f"<{n}q", *ids)
            ).hexdigest()
            self.manifests[(owner, day)] = (n, digest)
            if owner == self.shard_index:
                self.local_rows += n
            else:
                self.remote_rows += n
        self._open = None


def reconcile(per_shard_manifests: list) -> dict:
    """Verify all shards computed identical manifests; return the merged
    manifest (``(owner, epoch) -> (count, digest)``).

    Raises :class:`ExchangeDivergence` naming the first disagreeing cell.
    Every shard stages every row of the replicated trace, so each shard's
    manifest covers the *whole* exchange — equality across shards is the
    consistency proof.
    """
    reference = per_shard_manifests[0]
    for shard, manifest in enumerate(per_shard_manifests[1:], start=1):
        if manifest == reference:
            continue
        keys = set(reference) | set(manifest)
        for key in sorted(keys):
            if reference.get(key) != manifest.get(key):
                owner, day = key
                raise ExchangeDivergence(
                    f"shard {shard} disagrees with shard 0 on epoch day "
                    f"{day} for owner shard {owner}: "
                    f"{manifest.get(key)} != {reference.get(key)}"
                )
    return dict(reference)


@dataclass
class ShardContext:
    """Everything the trace generator needs to run shard-aware."""

    shard_map: ShardMap
    index: int
    exchange: ShardExchange

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards
