"""Simulated DNS: a registry of records plus a resolver.

Everything the CR product asks of DNS is covered:

* *Is the sender's domain resolvable?* (inbound MTA check) — ``A``/``MX``.
* *Where do I deliver this challenge?* — ``MX``.
* *Does the connecting client IP have a reverse mapping?* (reverse-DNS
  filter) — ``PTR``.
* *Which hosts may send for this domain?* (SPF validation, Fig. 12) —
  ``TXT`` records carrying ``v=spf1`` policies.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.net.faults import DnsTemporaryFailure


class DnsRegistry:
    """Authoritative record store for the simulated internet.

    Records are ``(name, rtype) -> [values]``. Names are case-insensitive.
    Caches (the :class:`Resolver`, the router's route cache) subscribe to
    change notifications so a record edit invalidates exactly the answers
    it affects.
    """

    A = "A"
    MX = "MX"
    PTR = "PTR"
    TXT = "TXT"

    def __init__(self) -> None:
        self._records: dict[tuple[str, str], list[str]] = {}
        self._listeners: list[Callable[[tuple[str, str]], None]] = []

    def subscribe(self, listener: Callable[[tuple[str, str]], None]) -> None:
        """Call *listener* with ``(name, rtype)`` whenever that answer set
        changes (both lowercase name and uppercase rtype)."""
        self._listeners.append(listener)

    def _notify(self, key: tuple[str, str]) -> None:
        for listener in self._listeners:
            listener(key)

    def add_record(self, name: str, rtype: str, value: str) -> None:
        """Append a record; duplicate values are ignored."""
        key = (name.lower(), rtype.upper())
        values = self._records.setdefault(key, [])
        if value not in values:
            values.append(value)
            self._notify(key)

    def remove_records(self, name: str, rtype: str) -> None:
        """Remove every *rtype* record for *name* (no error if absent)."""
        key = (name.lower(), rtype.upper())
        if self._records.pop(key, None) is not None:
            self._notify(key)

    def lookup(self, name: str, rtype: str) -> list[str]:
        """Return the values for ``(name, rtype)`` (empty list if none)."""
        return list(self._records.get((name.lower(), rtype.upper()), ()))

    # -- convenience registration helpers -------------------------------

    def register_mail_domain(
        self,
        domain: str,
        ip: str,
        *,
        mx_host: Optional[str] = None,
        with_ptr: bool = True,
        spf: Optional[str] = None,
    ) -> None:
        """Register the full record set of a mail-serving domain.

        Adds an ``A`` record, an ``MX`` pointing at *mx_host* (default
        ``mail.<domain>``), optionally a ``PTR`` mapping *ip* back to the MX
        host, and optionally an SPF ``TXT`` policy.
        """
        mx = mx_host or f"mail.{domain}"
        self.add_record(domain, self.A, ip)
        self.add_record(domain, self.MX, mx)
        self.add_record(mx, self.A, ip)
        if with_ptr:
            self.add_record(ip, self.PTR, mx)
        if spf is not None:
            self.add_record(domain, self.TXT, spf)

    def register_client_ptr(self, ip: str, hostname: str) -> None:
        """Give a sending client IP a reverse mapping (legit mail servers)."""
        self.add_record(ip, self.PTR, hostname)


class Resolver:
    """Query interface used by MTAs and filters.

    Counts queries (useful for benchmarks) and memoises answers per
    ``(name, rtype)``: records in the authoritative registry never expire
    on their own (a cached answer's TTL is "until the record set changes"),
    so the registry's change notifications are the TTL — an
    ``add_record``/``remove_records`` drops exactly the cached answers it
    invalidated, and everything else stays warm for the whole run. Flip
    :data:`CACHE_ENABLED` off (class-wide) to A/B the cache away.
    """

    #: Class-wide switch so tests can compare cached vs uncached runs.
    CACHE_ENABLED = True

    def __init__(self, registry: DnsRegistry) -> None:
        self.registry = registry
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Fault-injection schedule (:class:`repro.net.faults.FaultPlan`)
        #: or ``None``; installed by ``World.install_fault_plan``.
        self.fault_plan = None
        self._cache: dict[tuple[str, str], tuple[str, ...]] = {}
        #: domain -> bool memo for :meth:`resolves` — the single hottest
        #: DNS question (asked once per inbound message). Invalidated by
        #: the same registry notifications as the answer cache.
        self._resolves_cache: dict[str, bool] = {}
        registry.subscribe(self._invalidate)

    def _invalidate(self, key: tuple[str, str]) -> None:
        self._cache.pop(key, None)
        if key[1] == "A" or key[1] == "MX":
            self._resolves_cache.pop(key[0], None)

    def _lookup(self, name: str, rtype: str) -> tuple[str, ...]:
        """Memoised registry lookup (the cached tuple IS the answer)."""
        if not Resolver.CACHE_ENABLED:
            return tuple(self.registry.lookup(name, rtype))
        key = (name.lower(), rtype)
        answer = self._cache.get(key)
        if answer is not None:
            self.cache_hits += 1
            return answer
        self.cache_misses += 1
        answer = tuple(self.registry.lookup(name, rtype))
        self._cache[key] = answer
        return answer

    def check_available(self, name: str) -> None:
        """Raise :class:`DnsTemporaryFailure` when a fault episode covers
        *name* right now.

        This runs **before** any cache: a transient SERVFAIL must never be
        memoised (neither here nor as a ``NO_ROUTE`` routing decision), and
        conversely a warm cache must not mask the outage — the cached and
        uncached substrates have to behave identically under faults.
        """
        plan = self.fault_plan
        if plan is not None and plan.dns_unavailable(name):
            plan.counters.dns_failures += 1
            raise DnsTemporaryFailure(f"SERVFAIL resolving {name}")

    def resolves(self, domain: str) -> bool:
        """True when *domain* has an ``A`` or ``MX`` record.

        This is the inbound MTA's "is it able to resolve the incoming email
        domain" check. Raises :class:`DnsTemporaryFailure` during an
        injected DNS trouble episode covering *domain*.
        """
        self.queries += 1
        self.check_available(domain)
        if not Resolver.CACHE_ENABLED:
            return bool(
                self._lookup(domain, DnsRegistry.A)
                or self._lookup(domain, DnsRegistry.MX)
            )
        key = domain.lower()
        answer = self._resolves_cache.get(key)
        if answer is None:
            answer = bool(
                self._lookup(domain, DnsRegistry.A)
                or self._lookup(domain, DnsRegistry.MX)
            )
            self._resolves_cache[key] = answer
        return answer

    def mx_host(self, domain: str) -> Optional[str]:
        """Best MX target hostname for *domain*, or ``None``."""
        self.queries += 1
        hosts = self._lookup(domain, DnsRegistry.MX)
        return hosts[0] if hosts else None

    def ptr(self, ip: str) -> Optional[str]:
        """Reverse lookup of *ip*, or ``None`` when no PTR exists."""
        self.queries += 1
        names = self._lookup(ip, DnsRegistry.PTR)
        return names[0] if names else None

    def txt(self, domain: str) -> list[str]:
        """All TXT records of *domain*."""
        self.queries += 1
        return list(self._lookup(domain, DnsRegistry.TXT))

    def spf_policy(self, domain: str) -> Optional[str]:
        """The ``v=spf1`` TXT record of *domain*, or ``None``."""
        for record in self.txt(domain):
            if record.startswith("v=spf1"):
                return record
        return None


def iter_spf_mechanisms(policy: str) -> Iterable[str]:
    """Yield the mechanism terms of an SPF policy string (skipping the
    version tag)."""
    for term in policy.split():
        if term == "v=spf1":
            continue
        yield term
