"""Deterministic crash-fault injection: component crashes inside the CR
product itself.

Where :mod:`repro.net.faults` models an unreliable *internet*, this module
models an unreliable *server room*: the deployed appliance's own processes
crash and restart. Four components can fail, each with a distinct
volatile/durable state split:

* **dispatcher** — the CR engine's inbound path. While down, MTA-IN's
  handoff fails and the *sending* MTA keeps the message queued (a 4xx
  analog): the message is re-presented at recovery time, or never accepted
  at all if the retry would land past the horizon. No accepted message is
  ever lost — it simply is not accepted yet.
* **gray_spool** — the quarantine database. The entry journal is durable;
  the per-user and per-(user, sender) indexes are derived state that a
  crash discards and recovery rebuilds from the journal. Under the
  ``lossy`` durability model the most recent journal writes are lost too —
  deliberately violating the product's zero-loss claim so the lifecycle
  ledger can prove it notices.
* **digest** — the nightly digest generator. A crash during the digest
  window simply skips that night's digests (users see yesterday's entries
  tomorrow); nothing is lost.
* **mta_out** — the outbound MTA. Its in-flight ledger is a write-ahead
  journal: recovery re-drives every queued message with its attempt count
  intact. Under ``lossy`` durability the queue is volatile and a crash
  strands everything in flight — again, the ledger must notice.

Determinism mirrors :class:`~repro.net.faults.FaultPlan`: every draw is
derived from ``sha256(seed/kind/key)``, never from shared stream state, so
the crash schedule is a pure function of ``(seed, settings, company,
component)`` — independent of traffic order and identical between cached
and uncached substrate runs, and between checkpointed and resumed runs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from functools import partial
from typing import Optional

from repro.util.rng import poisson
from repro.util.simtime import DAY, HOUR, MINUTE

#: Length of the "month" used by the per-month crash rates.
MONTH = 30 * DAY

#: Components that can crash, in stable order.
COMPONENTS = ("dispatcher", "gray_spool", "digest", "mta_out")

#: Durability models for the crash-volatile state.
JOURNALED = "journaled"
LOSSY = "lossy"


@dataclass(frozen=True)
class CrashSettings:
    """Knobs of one crash-injection configuration (rates per month)."""

    #: Master switch; a disabled settings object never builds a plan.
    enabled: bool = True
    #: Expected crashes per component per company per month.
    crashes_per_component_month: float = 1.0
    #: How long a crashed component stays down before its supervisor
    #: restarts it.
    downtime_range: tuple = (5 * MINUTE, 2 * HOUR)
    #: Which components participate (subset of :data:`COMPONENTS`).
    components: tuple = COMPONENTS
    #: ``"journaled"`` — volatile state is rebuilt from durable journals
    #: at recovery, losing nothing; ``"lossy"`` — recent writes and
    #: in-flight queues evaporate (negative-testing mode: the lifecycle
    #: ledger is expected to catch the loss).
    durability: str = JOURNALED
    #: Under ``lossy``: journal writes younger than this at crash time
    #: are lost.
    lossy_window: float = 10 * MINUTE
    #: Re-driven outbound mail and re-presented inbound mail restart over
    #: this many seconds after recovery (thundering-herd spread).
    redrive_spread: float = 5 * MINUTE

    def __post_init__(self) -> None:
        if self.durability not in (JOURNALED, LOSSY):
            raise ValueError(
                f"unknown durability {self.durability!r}; "
                f"expected {JOURNALED!r} or {LOSSY!r}"
            )
        unknown = set(self.components) - set(COMPONENTS)
        if unknown:
            raise ValueError(
                f"unknown components {sorted(unknown)}; "
                f"available: {list(COMPONENTS)}"
            )


#: Named crash configurations, mirroring the fault presets.
CRASH_PRESETS: dict = {
    "off": CrashSettings(
        enabled=False,
        crashes_per_component_month=0.0,
        components=(),
    ),
    "rare": CrashSettings(
        crashes_per_component_month=0.4,
        downtime_range=(5 * MINUTE, 1 * HOUR),
    ),
    "flaky": CrashSettings(
        crashes_per_component_month=3.0,
        downtime_range=(10 * MINUTE, 4 * HOUR),
    ),
}


def get_crash_preset(name: str) -> CrashSettings:
    """Look up a named crash preset (:data:`CRASH_PRESETS`)."""
    try:
        return CRASH_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown crash preset {name!r}; available: {sorted(CRASH_PRESETS)}"
        ) from None


def crash_preset_names() -> list:
    return sorted(CRASH_PRESETS)


@dataclass
class CrashCounters:
    """What the crash schedule actually did during a run."""

    #: Crash events that fired (component went down inside the horizon).
    crashes: int = 0
    #: Per-component crash counts.
    by_component: dict = field(default_factory=dict)
    #: Inbound messages re-presented after a dispatcher recovery.
    inbound_deferred: int = 0
    #: Inbound messages never accepted because every retry would land
    #: past the horizon (the sending MTA gave up; no ledger obligation).
    inbound_refused: int = 0
    #: Nightly digest sweeps skipped by a digest-component crash.
    digests_skipped: int = 0
    #: Nightly quarantine-expiry sweeps skipped by a gray-spool crash.
    expiries_skipped: int = 0
    #: Outbound attempts deferred because the MTA was down.
    outbound_deferred: int = 0
    #: In-flight outbound messages re-driven from the journal at recovery.
    redriven: int = 0
    #: Messages lost by ``lossy`` crashes (gray entries + in-flight mail).
    lost: int = 0
    #: Gray-spool index rebuilds performed at recovery.
    journals_rebuilt: int = 0
    #: Rebuilds whose recovered indexes disagreed with the pre-crash ones
    #: (must stay 0 — a nonzero value is a recovery bug).
    journal_mismatches: int = 0


class CrashPlan:
    """The seeded crash schedule of one simulation run.

    Built by ``run_simulation`` when crashes are enabled, installed on
    every installation's dispatcher/spool/MTA, and armed on the simulator
    so the crash *instants* (state-loss + recovery actions) fire as
    events. All schedule queries are pure hash lookups so the plan
    pickles cleanly into checkpoints and answers identically after a
    restore.
    """

    def __init__(
        self,
        settings: CrashSettings,
        seed: int,
        horizon: float,
    ) -> None:
        self.settings = settings
        self.seed = int(seed)
        self.horizon = float(horizon)
        self.counters = CrashCounters()
        #: (scope, component) -> merged, sorted [(start, end)] windows.
        self._windows: dict = {}

    # -- deterministic derivation ---------------------------------------

    def _rng(self, kind: str, key: str = "") -> random.Random:
        digest = hashlib.sha256(
            f"{self.seed}/crash/{kind}/{key}".encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _frac(self, kind: str, key: str) -> float:
        """Uniform [0, 1) hash of ``(seed, kind, key)``."""
        digest = hashlib.sha256(
            f"{self.seed}/crash/{kind}/{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def windows_for(self, scope: str, component: str) -> list:
        """Downtime windows of one component, merged and sorted."""
        key = (scope, component)
        windows = self._windows.get(key)
        if windows is None:
            windows = self._windows[key] = self._draw_windows(scope, component)
        return windows

    def _draw_windows(self, scope: str, component: str) -> list:
        if component not in self.settings.components:
            return []
        rng = self._rng("windows", f"{scope}/{component}")
        rate = self.settings.crashes_per_component_month
        count = poisson(rng, rate * self.horizon / MONTH)
        raw = []
        for _ in range(count):
            start = rng.uniform(0.0, self.horizon)
            raw.append((start, start + rng.uniform(*self.settings.downtime_range)))
        raw.sort()
        merged: list = []
        for start, end in raw:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    # -- test/debug overrides -------------------------------------------

    def force_crash(
        self, scope: str, component: str, start: float, downtime: float
    ) -> None:
        """Pin one crash window explicitly (tests, what-ifs). Call before
        :meth:`arm`."""
        windows = self.windows_for(scope, component)
        windows.append((start, start + downtime))
        windows.sort()

    # -- schedule queries -------------------------------------------------

    def down(self, scope: str, component: str, now: float) -> bool:
        """True when *component* of *scope* is down at *now*."""
        for start, end in self.windows_for(scope, component):
            if start > now:
                return False  # sorted + merged: nothing later covers now
            if now < end:
                return True
        return False

    def recovery_at(self, scope: str, component: str, now: float) -> float:
        """End of the downtime window covering *now* (caller checked
        :meth:`down` first)."""
        for start, end in self.windows_for(scope, component):
            if start <= now < end:
                return end
        return now

    def inbound_retry_delay(
        self, scope: str, msg_id: int, now: float
    ) -> Optional[float]:
        """Delay until the sending MTA re-presents an inbound message that
        hit a down dispatcher, or ``None`` when the retry would land past
        the horizon (the remote queue expires it; the message is never
        accepted, so the ledger owes nothing for it)."""
        recovery = self.recovery_at(scope, "dispatcher", now)
        jitter = self._frac("inbound-retry", f"{scope}/{msg_id}")
        delay = (recovery - now) + jitter * self.settings.redrive_spread
        if now + delay >= self.horizon:
            self.counters.inbound_refused += 1
            return None
        self.counters.inbound_deferred += 1
        return delay

    def digest_skipped(self, scope: str, now: float) -> bool:
        """True when tonight's digest sweep is lost to a digest crash."""
        if self.down(scope, "digest", now):
            self.counters.digests_skipped += 1
            return True
        return False

    def expiry_skipped(self, scope: str, now: float) -> bool:
        """True when tonight's expiry sweep is lost to a spool crash.

        Legal under the product's contract: quarantine holds messages *at
        least* 30 days, so a skipped sweep only delays expiry to the next
        night."""
        if self.down(scope, "gray_spool", now):
            self.counters.expiries_skipped += 1
            return True
        return False

    def outbound_defer(
        self, scope: str, token: int, now: float
    ) -> Optional[float]:
        """Delay until a down outbound MTA can attempt this delivery, or
        ``None`` when the MTA is up."""
        if not self.down(scope, "mta_out", now):
            return None
        recovery = self.recovery_at(scope, "mta_out", now)
        jitter = self._frac("outbound-defer", f"{scope}/{token}")
        self.counters.outbound_deferred += 1
        return (recovery - now) + jitter * self.settings.redrive_spread

    def redrive_jitter(self, scope: str, token: int) -> float:
        """Deterministic restart spread for one re-driven outbound token."""
        return (
            self._frac("redrive", f"{scope}/{token}")
            * self.settings.redrive_spread
        )

    # -- crash instants ---------------------------------------------------

    def arm(self, simulator, installations: dict, store) -> None:
        """Schedule the crash-instant events (state loss + recovery).

        The *queries* above make downtime visible to traffic; the events
        armed here perform what happens **at** the crash: drop volatile
        state per the durability model, rebuild from journals, re-drive
        outbound queues, and log a :class:`~repro.analysis.records.CrashRecord`.
        """
        for company_id in sorted(installations):
            installation = installations[company_id]
            installation.crash_plan = self
            for mta in (installation.user_mta, installation.challenge_mta):
                mta.crash_plan = self
                mta.crash_scope = company_id
            for component in COMPONENTS:
                for start, end in self.windows_for(company_id, component):
                    if start >= self.horizon:
                        continue
                    simulator.schedule(
                        start,
                        partial(
                            self._crash,
                            company_id,
                            component,
                            end,
                            installation,
                            store,
                        ),
                        label=f"crash:{company_id}:{component}",
                    )

    def _crash(
        self, company_id: str, component: str, recovery: float,
        installation, store,
    ) -> None:
        # Imported here: net.* must not import analysis.* at module level.
        from repro.analysis.records import CrashRecord

        now = installation.simulator.now
        lossy = self.settings.durability == LOSSY
        redriven = 0
        lost = 0
        journal_ok = True
        if component == "gray_spool":
            spool = installation.gray_spool
            if lossy:
                lost = spool.lose_uncommitted(now - self.settings.lossy_window)
                self.counters.lost += lost
            journal_ok = spool.rebuild_indexes()
            self.counters.journals_rebuilt += 1
            if not journal_ok:
                self.counters.journal_mismatches += 1
        elif component == "mta_out":
            for mta in {
                id(m): m
                for m in (installation.user_mta, installation.challenge_mta)
            }.values():
                if lossy:
                    lost += mta.crash_lose()
                else:
                    redriven += mta.crash_recover(
                        recovery, partial(self.redrive_jitter, company_id)
                    )
            self.counters.lost += lost
            self.counters.redriven += redriven
        # dispatcher / digest: no volatile state beyond what the schedule
        # queries already defer or skip.
        self.counters.crashes += 1
        self.counters.by_component[component] = (
            self.counters.by_component.get(component, 0) + 1
        )
        store.add_crash(
            CrashRecord(
                company_id=company_id,
                t=now,
                component=component,
                downtime=recovery - now,
                redriven=redriven,
                lost=lost,
                journal_ok=journal_ok,
            )
        )
