"""RFC822-lite email address parsing and validation.

The paper's inbound MTA "first checks if the email address is well formed
(according to RFC822)". We implement the practically-relevant subset of the
grammar used by real MTAs for envelope addresses: a dot-atom local part and
a dot-separated domain of LDH labels. Quoted local parts, comments, and
source routes are intentionally out of scope — commercial anti-spam MTAs
reject those outright, exactly like our :data:`MALFORMED` verdict.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Characters allowed in an (unquoted) local-part atom, per RFC 5321 atext.
_ATEXT = r"A-Za-z0-9!#$%&'*+/=?^_`{|}~-"

# NOTE: these anchor with ``\Z``, not ``$`` — ``$`` matches *before* a
# trailing newline, which would let ``"a@b.com\n"`` through. Harmless for
# simulator-generated addresses, an injection hole for live SMTP traffic
# (CRLF smuggling through the envelope).
_LOCAL_RE = re.compile(rf"^[{_ATEXT}]+(?:\.[{_ATEXT}]+)*\Z")
_LABEL_RE = re.compile(r"^[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?\Z")
_TLD_RE = re.compile(r"^[A-Za-z]{2,}\Z")

#: Bytes that must never appear in an envelope address regardless of where
#: the grammar would otherwise stall: NUL and the CR/LF pair (header/command
#: injection), plus the rest of C0 and DEL for good measure.
_CONTROL_RE = re.compile(r"[\x00-\x1f\x7f]")

#: One-shot acceptance regex: local dot-atom, one ``@``, LDH labels, alpha
#: TLD — the whole grammar in a single C-level match. Length limits
#: (whole address, local part, domain, final label) are checked separately
#: with integer arithmetic; together the fast path accepts exactly the
#: language :func:`parse_address` accepts (pinned by a fuzz test).
_FULL_RE = re.compile(
    rf"^[{_ATEXT}]+(?:\.[{_ATEXT}]+)*"
    r"@(?:[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?\.)+[A-Za-z]{2,}\Z"
)

MAX_LOCAL_LENGTH = 64
MAX_DOMAIN_LENGTH = 253
MAX_ADDRESS_LENGTH = 254


class AddressError(ValueError):
    """Raised when a string is not a well-formed email address."""


@dataclass(frozen=True)
class Address:
    """A parsed email address: ``local @ domain`` (domain lowercased)."""

    local: str
    domain: str

    @property
    def full(self) -> str:
        return f"{self.local}@{self.domain}"

    def __str__(self) -> str:
        return self.full


def parse_address(raw: str) -> Address:
    """Parse *raw* into an :class:`Address` or raise :class:`AddressError`.

    >>> parse_address("Dept-x.p@SCN-1.com")
    Address(local='Dept-x.p', domain='scn-1.com')
    """
    if not isinstance(raw, str):
        raise AddressError(f"not a string: {raw!r}")
    if len(raw) > MAX_ADDRESS_LENGTH:
        raise AddressError("address too long")
    if _CONTROL_RE.search(raw):
        raise AddressError("control character in address")
    if raw.count("@") != 1:
        raise AddressError(f"address must contain exactly one '@': {raw!r}")
    local, domain = raw.split("@")
    if not local:
        raise AddressError("empty local part")
    if len(local) > MAX_LOCAL_LENGTH:
        raise AddressError("local part too long")
    if not _LOCAL_RE.match(local):
        raise AddressError(f"invalid local part: {local!r}")
    domain = domain.lower()
    if not domain:
        raise AddressError("empty domain")
    if len(domain) > MAX_DOMAIN_LENGTH:
        raise AddressError("domain too long")
    labels = domain.split(".")
    if len(labels) < 2:
        raise AddressError(f"domain must have at least two labels: {domain!r}")
    for label in labels:
        if not _LABEL_RE.match(label):
            raise AddressError(f"invalid domain label: {label!r}")
    if not _TLD_RE.match(labels[-1]):
        raise AddressError(f"invalid top-level domain: {labels[-1]!r}")
    return Address(local=local, domain=domain)


#: Memoised well-formedness verdicts. Envelope addresses repeat heavily
#: (user mailboxes, pooled campaign senders, contact books), so the regex
#: grammar runs once per distinct string; the cap bounds memory against
#: workloads that synthesise unbounded unique addresses (dictionary
#: attacks are exactly that).
_WELL_FORMED_CACHE: dict = {}
#: Memoised ``local, domain(lowercased)`` splits of well-formed addresses.
_SPLIT_CACHE: dict = {}
_CACHE_CAP = 200_000


def is_well_formed(raw: str) -> bool:
    """True when :func:`parse_address` would accept *raw*. Memoised.

    Accepting inputs take the single-regex fast path; anything it rejects
    falls back to :func:`parse_address` so the verdict (and any future
    divergence) is always the parser's.
    """
    cached = _WELL_FORMED_CACHE.get(raw)
    if cached is not None:
        return cached
    try:
        if (
            len(raw) <= MAX_ADDRESS_LENGTH
            and _FULL_RE.match(raw)
            and (at := raw.rindex("@")) <= MAX_LOCAL_LENGTH
            and len(raw) - at - 1 <= MAX_DOMAIN_LENGTH
            and len(raw) - raw.rindex(".") - 1 <= 63
        ):
            verdict = True
        else:
            parse_address(raw)
            verdict = True
    except AddressError:
        verdict = False
    except TypeError:
        # Unhashable / non-string oddities: fall through uncached.
        return False
    if len(_WELL_FORMED_CACHE) >= _CACHE_CAP:
        _WELL_FORMED_CACHE.clear()
    _WELL_FORMED_CACHE[raw] = verdict
    return verdict


def split_address(raw: str) -> tuple[str, str]:
    """``(local, domain)`` of *raw* with the domain lowercased. Memoised.

    A plain textual split (no grammar validation) — the hot MTA path
    validates separately via :func:`is_well_formed` and then only needs
    the canonical domain. *raw* must contain an ``@``.
    """
    cached = _SPLIT_CACHE.get(raw)
    if cached is not None:
        return cached
    local, _, domain = raw.rpartition("@")
    parts = (local, domain.lower())
    if len(_SPLIT_CACHE) >= _CACHE_CAP:
        _SPLIT_CACHE.clear()
    _SPLIT_CACHE[raw] = parts
    return parts


def domain_of(raw: str) -> str:
    """Return the (lowercased) domain of a well-formed address.

    Raises :class:`AddressError` for malformed input.
    """
    return parse_address(raw).domain
