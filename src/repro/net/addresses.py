"""RFC822-lite email address parsing and validation.

The paper's inbound MTA "first checks if the email address is well formed
(according to RFC822)". We implement the practically-relevant subset of the
grammar used by real MTAs for envelope addresses: a dot-atom local part and
a dot-separated domain of LDH labels. Quoted local parts, comments, and
source routes are intentionally out of scope — commercial anti-spam MTAs
reject those outright, exactly like our :data:`MALFORMED` verdict.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Characters allowed in an (unquoted) local-part atom, per RFC 5321 atext.
_ATEXT = r"A-Za-z0-9!#$%&'*+/=?^_`{|}~-"

_LOCAL_RE = re.compile(rf"^[{_ATEXT}]+(?:\.[{_ATEXT}]+)*$")
_LABEL_RE = re.compile(r"^[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?$")
_TLD_RE = re.compile(r"^[A-Za-z]{2,}$")

MAX_LOCAL_LENGTH = 64
MAX_DOMAIN_LENGTH = 253
MAX_ADDRESS_LENGTH = 254


class AddressError(ValueError):
    """Raised when a string is not a well-formed email address."""


@dataclass(frozen=True)
class Address:
    """A parsed email address: ``local @ domain`` (domain lowercased)."""

    local: str
    domain: str

    @property
    def full(self) -> str:
        return f"{self.local}@{self.domain}"

    def __str__(self) -> str:
        return self.full


def parse_address(raw: str) -> Address:
    """Parse *raw* into an :class:`Address` or raise :class:`AddressError`.

    >>> parse_address("Dept-x.p@SCN-1.com")
    Address(local='Dept-x.p', domain='scn-1.com')
    """
    if not isinstance(raw, str):
        raise AddressError(f"not a string: {raw!r}")
    if len(raw) > MAX_ADDRESS_LENGTH:
        raise AddressError("address too long")
    if raw.count("@") != 1:
        raise AddressError(f"address must contain exactly one '@': {raw!r}")
    local, domain = raw.split("@")
    if not local:
        raise AddressError("empty local part")
    if len(local) > MAX_LOCAL_LENGTH:
        raise AddressError("local part too long")
    if not _LOCAL_RE.match(local):
        raise AddressError(f"invalid local part: {local!r}")
    domain = domain.lower()
    if not domain:
        raise AddressError("empty domain")
    if len(domain) > MAX_DOMAIN_LENGTH:
        raise AddressError("domain too long")
    labels = domain.split(".")
    if len(labels) < 2:
        raise AddressError(f"domain must have at least two labels: {domain!r}")
    for label in labels:
        if not _LABEL_RE.match(label):
            raise AddressError(f"invalid domain label: {label!r}")
    if not _TLD_RE.match(labels[-1]):
        raise AddressError(f"invalid top-level domain: {labels[-1]!r}")
    return Address(local=local, domain=domain)


def is_well_formed(raw: str) -> bool:
    """True when :func:`parse_address` would accept *raw*."""
    try:
        parse_address(raw)
    except AddressError:
        return False
    return True


def domain_of(raw: str) -> str:
    """Return the (lowercased) domain of a well-formed address.

    Raises :class:`AddressError` for malformed input.
    """
    return parse_address(raw).domain
