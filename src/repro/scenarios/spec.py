"""Hashable scenario specifications.

A scenario is *data*: frozen dataclasses of scalars and tuples, so one
spec is hashable (it folds into the sweep cache key), picklable (it
ships to shard workers), and has a deterministic ``repr`` (two loads of
the same YAML produce identical cache keys). Anything live — attack
objects, filter settings — is built from the spec at install time via
:meth:`ScenarioSpec.build_attacks` / :meth:`ScenarioSpec.filters_template`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AttackSpec:
    """One attack instance, by registry kind name.

    Extra per-kind constructor parameters (``guess_prob``,
    ``seed_days``, ...) ride in ``params`` as sorted ``(name, value)``
    pairs so the spec stays hashable with a canonical repr.
    """

    kind: str
    company_id: str
    start_day: int = 1
    duration_days: int = 7
    messages_per_day: float = 50.0
    params: tuple = ()

    def build(self):
        from repro.workload.attacks import build_attack

        return build_attack(self)


@dataclass(frozen=True)
class VerdictCheck:
    """One machine-checked assertion about a finished run.

    ``metric`` names a function in :mod:`repro.analysis.verdicts`;
    ``campaign``/``company_id`` scope it; the check passes when
    ``observed <op> value`` holds.
    """

    name: str
    metric: str
    op: str = ">="
    value: float = 0.0
    campaign: Optional[str] = None
    company_id: Optional[str] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, declarative attack scenario.

    Composes attacks + fault/crash weather + fleet-wide filter overrides
    + pass/fail verdict checks. Fully hashable: every field is a scalar
    or a tuple of frozen dataclasses / pairs.
    """

    name: str
    description: str = ""
    attacks: tuple = ()
    #: Fault-injection preset name applied to the run (``None`` = clear
    #: weather), overridable by an explicit ``run_simulation`` argument.
    faults: Optional[str] = None
    #: Crash-injection preset name, same override rule.
    crashes: Optional[str] = None
    #: Fleet-wide :class:`~repro.core.config.FilterSettings` field
    #: overrides, as sorted ``(field, value)`` pairs.
    filters: tuple = ()
    #: Filter-chain composition as sorted
    #: :class:`~repro.core.config.FilterChainSpec` ``(field, value)``
    #: pairs (``members`` value itself a tuple); empty = the scenario
    #: leaves the chain alone. Same override rule as ``filters``: an
    #: explicit ``run_simulation(chain=...)`` argument wins.
    chain: tuple = ()
    verdicts: tuple = ()

    def build_attacks(self) -> list:
        """Fresh attack instances (never cached: attacks hold per-run
        state that :meth:`~repro.workload.attacks.AttackScenario.install`
        allocates)."""
        return [attack.build() for attack in self.attacks]

    def filters_template(self):
        """The composed ``FilterSettings``, or ``None`` when the scenario
        leaves the fleet's filter configuration alone."""
        if not self.filters:
            return None
        from repro.core.config import FilterSettings

        return FilterSettings(**dict(self.filters))

    def chain_spec(self):
        """The composed ``FilterChainSpec``, or ``None`` when the scenario
        leaves the chain composition alone."""
        if not self.chain:
            return None
        from repro.core.config import FilterChainSpec

        return FilterChainSpec(**dict(self.chain))


@dataclass
class ScenarioError(Exception):
    """A scenario file is malformed or references unknown machinery."""

    message: str
    path: str = ""

    def __str__(self) -> str:
        prefix = f"{self.path}: " if self.path else ""
        return f"{prefix}{self.message}"
