"""Declarative attack-scenario packs (DESIGN.md §13).

Scenarios are named YAML files under ``<repo>/scenarios/`` that compose
workload attacks, fault/crash weather, filter-config overrides, and
machine-checked pass/fail verdicts into one hashable
:class:`~repro.scenarios.spec.ScenarioSpec` the runner, the sweep cache,
and the sharded data plane all consume.
"""

from repro.scenarios.loader import (
    SCENARIO_DIR_ENV,
    load_scenario,
    resolve_scenario,
    scenario_dir,
    scenario_names,
)
from repro.scenarios.spec import (
    AttackSpec,
    ScenarioError,
    ScenarioSpec,
    VerdictCheck,
)

__all__ = [
    "SCENARIO_DIR_ENV",
    "AttackSpec",
    "ScenarioError",
    "ScenarioSpec",
    "VerdictCheck",
    "load_scenario",
    "resolve_scenario",
    "scenario_dir",
    "scenario_names",
]
