"""Load the declarative scenario pack from ``scenarios/*.yaml``.

File format
-----------

A scenario file is a YAML mapping::

    _base: _base.yaml          # optional: deep-merge onto another file
    description: one line shown by `repro scenarios`
    attacks:                   # list of attack instances
      - kind: captcha-farm     # name in repro.workload.attacks.ATTACK_KINDS
        company_id: c01
        start_day: 1
        duration_days: 5
        messages_per_day: 120
        solve_prob: 0.65       # any extra key -> the attack's constructor
    faults: stormy             # optional fault preset
    crashes: flaky             # optional crash preset
    filters:                   # optional fleet-wide FilterSettings fields
      dnsbl_enabled: false
    chain: hybrid              # optional FilterChainSpec: preset name,
                               # comma list, or mapping of spec fields
    verdicts:                  # machine-checked pass/fail assertions
      - name: challenges-reflected
        metric: attack_challenges
        campaign: attack-captcha-farm
        op: ">="
        value: 100

``_base`` chains resolve relative to the referencing file and deep-merge
mapping values (lists and scalars in the child replace the base's); the
scenario's registry name is its file stem, and files starting with an
underscore are layering bases, hidden from the registry.

Parsing prefers PyYAML when importable; CI images without it fall back
to a built-in parser for exactly the restricted subset above (nested
mappings, lists of flat mappings, scalars, ``#`` comment lines). A test
pins that both parsers read every pack file identically.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.scenarios.spec import (
    AttackSpec,
    ScenarioError,
    ScenarioSpec,
    VerdictCheck,
)

#: Environment override for the pack directory (tests point this at
#: temporary packs).
SCENARIO_DIR_ENV = "REPRO_SCENARIO_DIR"

_CORE_ATTACK_FIELDS = (
    "kind", "company_id", "start_day", "duration_days", "messages_per_day",
)
_SCENARIO_KEYS = (
    "_base", "description", "attacks", "faults", "crashes", "filters",
    "chain", "verdicts",
)
_VERDICT_KEYS = ("name", "metric", "op", "value", "campaign", "company_id")


def scenario_dir() -> Path:
    """The pack directory: ``$REPRO_SCENARIO_DIR`` or ``<repo>/scenarios``."""
    override = os.environ.get(SCENARIO_DIR_ENV)
    if override:
        return Path(override)
    # src/repro/scenarios/loader.py -> repo root / scenarios
    return Path(__file__).resolve().parents[3] / "scenarios"


def scenario_names(directory: Union[str, Path, None] = None) -> list:
    """Registry listing: every pack file's stem, underscore bases hidden."""
    root = Path(directory) if directory is not None else scenario_dir()
    if not root.is_dir():
        return []
    return sorted(
        path.stem
        for path in root.glob("*.yaml")
        if not path.name.startswith("_")
    )


def load_scenario(
    name: str, directory: Union[str, Path, None] = None
) -> ScenarioSpec:
    """Load one scenario by registry name (or explicit ``.yaml`` path)."""
    if name.endswith(".yaml"):
        path = Path(name)
    else:
        root = Path(directory) if directory is not None else scenario_dir()
        path = root / f"{name}.yaml"
    if not path.is_file():
        known = ", ".join(scenario_names(directory)) or "(none found)"
        raise ScenarioError(
            f"no scenario {name!r}; known scenarios: {known}",
            str(path),
        )
    data = _load_layered(path, seen=())
    return _spec_from_dict(path.stem, data, str(path))


def resolve_scenario(
    value: Union[str, ScenarioSpec, None],
    directory: Union[str, Path, None] = None,
) -> Optional[ScenarioSpec]:
    """Name -> spec; specs pass through; ``None`` stays ``None``."""
    if value is None or isinstance(value, ScenarioSpec):
        return value
    if isinstance(value, str):
        return load_scenario(value, directory)
    raise TypeError(
        f"scenario must be a name, a ScenarioSpec, or None; "
        f"got {type(value).__name__}"
    )


# -- layering ----------------------------------------------------------------


def _load_layered(path: Path, seen: tuple) -> dict:
    resolved = str(path.resolve())
    if resolved in seen:
        chain = " -> ".join(seen + (resolved,))
        raise ScenarioError(f"_base cycle: {chain}", str(path))
    data = _parse_file(path)
    if not isinstance(data, dict):
        raise ScenarioError(
            f"scenario file must be a mapping, got {type(data).__name__}",
            str(path),
        )
    base_name = data.pop("_base", None)
    if base_name is None:
        return data
    base_path = path.parent / str(base_name)
    if not base_path.suffix:
        base_path = base_path.with_suffix(".yaml")
    if not base_path.is_file():
        raise ScenarioError(
            f"_base {base_name!r} not found (looked at {base_path})",
            str(path),
        )
    base = _load_layered(base_path, seen + (resolved,))
    return _deep_merge(base, data)


def _deep_merge(base: dict, override: dict) -> dict:
    """Child mappings merge into the base's; lists and scalars replace."""
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = _deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged


# -- dict -> spec ------------------------------------------------------------


def _spec_from_dict(name: str, data: dict, path: str) -> ScenarioSpec:
    unknown = sorted(set(data) - set(_SCENARIO_KEYS))
    if unknown:
        raise ScenarioError(
            f"unknown scenario key(s) {', '.join(unknown)}; "
            f"valid keys: {', '.join(k for k in _SCENARIO_KEYS if k != '_base')}",
            path,
        )
    attacks = []
    for entry in data.get("attacks") or ():
        if not isinstance(entry, dict) or "kind" not in entry:
            raise ScenarioError(
                f"each attacks entry must be a mapping with a 'kind'; "
                f"got {entry!r}",
                path,
            )
        if "company_id" not in entry:
            raise ScenarioError(
                f"attack {entry['kind']!r} is missing company_id", path
            )
        params = tuple(
            sorted(
                (key, value)
                for key, value in entry.items()
                if key not in _CORE_ATTACK_FIELDS
            )
        )
        attacks.append(
            AttackSpec(
                kind=str(entry["kind"]),
                company_id=str(entry["company_id"]),
                start_day=int(entry.get("start_day", 1)),
                duration_days=int(entry.get("duration_days", 7)),
                messages_per_day=float(entry.get("messages_per_day", 50.0)),
                params=params,
            )
        )
    verdicts = []
    for entry in data.get("verdicts") or ():
        if not isinstance(entry, dict):
            raise ScenarioError(
                f"each verdicts entry must be a mapping; got {entry!r}", path
            )
        missing = [key for key in ("name", "metric", "value") if key not in entry]
        if missing:
            raise ScenarioError(
                f"verdict entry is missing {', '.join(missing)}: {entry!r}",
                path,
            )
        bad = sorted(set(entry) - set(_VERDICT_KEYS))
        if bad:
            raise ScenarioError(
                f"unknown verdict key(s) {', '.join(bad)} in "
                f"{entry.get('name')!r}",
                path,
            )
        verdicts.append(
            VerdictCheck(
                name=str(entry["name"]),
                metric=str(entry["metric"]),
                op=str(entry.get("op", ">=")),
                value=float(entry["value"]),
                campaign=entry.get("campaign"),
                company_id=entry.get("company_id"),
            )
        )
    filters = data.get("filters") or {}
    if not isinstance(filters, dict):
        raise ScenarioError(
            f"filters must be a mapping of FilterSettings fields; "
            f"got {filters!r}",
            path,
        )
    spec = ScenarioSpec(
        name=name,
        description=str(data.get("description", "")).strip(),
        attacks=tuple(attacks),
        faults=data.get("faults"),
        crashes=data.get("crashes"),
        filters=tuple(sorted(filters.items())),
        chain=_chain_pairs(data.get("chain"), path),
        verdicts=tuple(verdicts),
    )
    _validate(spec, path)
    return spec


def _chain_pairs(chain, path: str) -> tuple:
    """Canonicalise the optional ``chain:`` key into sorted field pairs.

    Accepts a preset/comma string (``chain: hybrid``) or a mapping of
    :class:`~repro.core.config.FilterChainSpec` fields whose ``members``
    is a list or comma string. Pairs, not a spec object, keep
    :class:`ScenarioSpec` reprs stable and scalar-only.
    """
    if chain is None:
        return ()
    if isinstance(chain, str):
        from repro.core.config import FilterChainSpec

        try:
            parsed = FilterChainSpec.parse(chain)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(str(exc), path)
        return (("members", parsed.members),)
    if isinstance(chain, dict):
        entries = dict(chain)
        members = entries.get("members")
        if isinstance(members, str):
            entries["members"] = tuple(
                m.strip() for m in members.split(",") if m.strip()
            )
        elif isinstance(members, list):
            entries["members"] = tuple(str(m) for m in members)
        return tuple(sorted(entries.items()))
    raise ScenarioError(
        f"chain must be a preset/comma string or a mapping of "
        f"FilterChainSpec fields; got {chain!r}",
        path,
    )


def _validate(spec: ScenarioSpec, path: str) -> None:
    """Fail at load time, not install time, for referential mistakes."""
    from repro.analysis.verdicts import METRICS
    from repro.core.config import FilterSettings
    from repro.workload.attacks import ATTACK_KINDS

    for attack in spec.attacks:
        if attack.kind not in ATTACK_KINDS:
            raise ScenarioError(
                f"unknown attack kind {attack.kind!r}; "
                f"known: {', '.join(sorted(ATTACK_KINDS))}",
                path,
            )
    settings_fields = FilterSettings.__dataclass_fields__
    for field_name, _value in spec.filters:
        if field_name not in settings_fields:
            raise ScenarioError(
                f"unknown FilterSettings field {field_name!r}; "
                f"known: {', '.join(sorted(settings_fields))}",
                path,
            )
    # Build the chain spec once here so unknown fields/members fail at
    # load time with the file path attached, not mid-run.
    try:
        spec.chain_spec()
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"invalid chain: {exc}", path)
    for check in spec.verdicts:
        if check.metric not in METRICS:
            raise ScenarioError(
                f"verdict {check.name!r} uses unknown metric "
                f"{check.metric!r}; known: {', '.join(sorted(METRICS))}",
                path,
            )
        if check.op not in ("<", "<=", ">", ">=", "==", "!="):
            raise ScenarioError(
                f"verdict {check.name!r} uses unknown op {check.op!r}",
                path,
            )


# -- parsing -----------------------------------------------------------------


def _parse_file(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    try:
        import yaml
    except ImportError:
        return _mini_parse(text, str(path))
    return yaml.safe_load(text)


def _mini_parse(text: str, path: str = "") -> dict:
    """Fallback parser for the pack's restricted YAML subset.

    Supports: a top-level mapping; nested flat mappings; lists whose
    items are scalars or flat mappings (``- key: value`` with
    continuation keys two spaces deeper); flow-style scalar lists
    (``[a, b]``); int/float/bool/null/quoted scalars; full-line ``#``
    comments. That is the whole grammar the pack files use — anything
    else should be authored with PyYAML available so the equivalence
    test can vouch for it.
    """
    lines = []
    for raw in text.splitlines():
        if not raw.strip() or raw.lstrip().startswith("#"):
            continue
        indent = len(raw) - len(raw.lstrip(" "))
        lines.append((indent, raw.strip()))
    if not lines:
        return {}
    value, next_index = _parse_block(lines, 0, lines[0][0], path)
    if next_index != len(lines):
        raise ScenarioError(
            f"unparsed trailing content at line {next_index + 1} "
            f"(inconsistent indentation?)",
            path,
        )
    if not isinstance(value, dict):
        raise ScenarioError("top level must be a mapping", path)
    return value


def _parse_block(lines: list, index: int, indent: int, path: str):
    if lines[index][1].startswith("- "):
        return _parse_list(lines, index, indent, path)
    return _parse_map(lines, index, indent, path)


def _parse_map(lines: list, index: int, indent: int, path: str):
    result: dict = {}
    while index < len(lines) and lines[index][0] == indent:
        content = lines[index][1]
        if content.startswith("- "):
            break
        key, sep, rest = content.partition(":")
        if not sep:
            raise ScenarioError(f"expected 'key: value', got {content!r}", path)
        key = key.strip()
        rest = rest.strip()
        index += 1
        if rest:
            result[key] = _scalar(rest)
        elif index < len(lines) and lines[index][0] > indent:
            value, index = _parse_block(
                lines, index, lines[index][0], path
            )
            result[key] = value
        else:
            result[key] = None
    return result, index


def _parse_list(lines: list, index: int, indent: int, path: str):
    items = []
    while (
        index < len(lines)
        and lines[index][0] == indent
        and lines[index][1].startswith("- ")
    ):
        head = lines[index][1][2:].strip()
        index += 1
        if ":" not in head:
            items.append(_scalar(head))
            continue
        # A mapping item: the head line plus any continuation keys at a
        # deeper indent form one flat map.
        block = [(indent + 2, head)]
        while index < len(lines) and lines[index][0] > indent:
            block.append((indent + 2, lines[index][1]))
            index += 1
        value, consumed = _parse_map(block, 0, indent + 2, path)
        if consumed != len(block):
            raise ScenarioError(
                f"nested structures inside list items are not supported "
                f"by the fallback parser (near {head!r})",
                path,
            )
        items.append(value)
    return items, index


def _scalar(token: str):
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    if token.startswith("[") and token.endswith("]"):
        # Flow-style list of scalars: [a, b, c]. No nesting.
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_scalar(item.strip()) for item in inner.split(",")]
    lowered = token.lower()
    if lowered in ("null", "~"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token
