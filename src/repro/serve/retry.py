"""Exponential backoff with deterministic jitter for the live outbound path.

The simulation's :class:`~repro.net.mta_out.OutboundMta` retries on the
fixed sendmail table — fine for a deterministic workload, but a live
deployment retrying a down destination wants exponential spacing, and a
*fleet* of challenges created in the same overload burst must not retry in
lockstep (the thundering-herd the jitter spreads). The jitter is derived
from the queue token with crc32, not a PRNG, so WAL replay reproduces the
exact same retry timeline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from repro.net.internet import Internet
from repro.net.mta_out import OutboundMta
from repro.sim.engine import Simulator
from repro.util.simtime import DAY, MINUTE


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base * factor**(attempt-1)`` capped at
    *max_delay*, up to *max_retries* retries, each delay spread by
    ``±jitter`` (a fraction) deterministically per (token, attempt)."""

    base: float = 15 * MINUTE
    factor: float = 2.0
    max_delay: float = 2 * DAY
    max_retries: int = 6
    jitter: float = 0.1

    def delay_for(self, attempts: int, token: int) -> Optional[float]:
        """Delay before retry number *attempts*, ``None`` when exhausted."""
        if attempts > self.max_retries:
            return None
        delay = min(self.base * self.factor ** (attempts - 1), self.max_delay)
        if not self.jitter:
            return delay
        # crc32 as a hash: stable across processes and Python versions
        # (builtin hash() is salted per process — replay would diverge).
        frac = zlib.crc32(f"{token}:{attempts}".encode()) / 0xFFFFFFFF
        return delay * (1.0 + self.jitter * (2.0 * frac - 1.0))


class BackoffOutboundMta(OutboundMta):
    """The stock outbound MTA with the retry schedule swapped for
    :class:`RetryPolicy`. Queueing, conservation accounting, drain, and
    crash redrive are all inherited untouched."""

    def __init__(
        self,
        name: str,
        ip: str,
        simulator: Simulator,
        internet: Internet,
        policy: RetryPolicy = RetryPolicy(),
    ) -> None:
        super().__init__(name, ip, simulator, internet)
        self.policy = policy

    def _retry_delay(self, attempts: int, token: int) -> Optional[float]:
        return self.policy.delay_for(attempts, token)


def backoff_factory(policy: RetryPolicy):
    """An ``outbound_factory`` for :class:`CompanyInstallation` that builds
    :class:`BackoffOutboundMta` instances sharing *policy*."""

    def build(
        name: str, ip: str, simulator: Simulator, internet: Internet
    ) -> BackoffOutboundMta:
        return BackoffOutboundMta(name, ip, simulator, internet, policy=policy)

    return build


__all__ = ["BackoffOutboundMta", "RetryPolicy", "backoff_factory"]
