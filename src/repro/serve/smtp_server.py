"""The asyncio SMTP listener: live RFC-5321 sessions into the engine.

One coroutine per connection runs the EHLO/MAIL/RCPT/DATA state machine,
CRLF-strict (a bare LF in a command line is a 500, exactly the kind of
input the simulator never generates), with three defensive budgets:

* per-phase read deadlines (a stalled client gets a 421 and the socket
  closed, so slowloris cannot pin worker state),
* a per-connection session budget,
* a maximum message size enforced *while* reading DATA (an oversized
  message is drained and refused with 552, not buffered).

Envelope addresses are validated with the same
:func:`repro.net.addresses.is_well_formed` the simulated MTA uses — the
live and simulated parsers cannot drift apart because they are the same
function. The DATA acknowledgement comes from
:meth:`~repro.serve.service.LiveCrService.try_submit`: 421 when the
admission queue refuses, otherwise whatever the engine decided *after*
the record hit the fsynced WAL.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.net.addresses import is_well_formed
from repro.net.smtp import Reply
from repro.serve.service import LiveCrService

#: RFC 5321 allows 512-byte command lines; we are a little generous.
MAX_COMMAND_LINE = 1024
#: Upper bound on one message's payload.
DEFAULT_MAX_MESSAGE_BYTES = 1 * 1024 * 1024
#: Too many consecutive garbage commands → drop the session.
MAX_SYNTAX_ERRORS = 10
#: SMTP "too many recipients" — session-only, so not part of ``Reply``.
TOO_MANY_RCPTS = 452

_TEXT = {
    Reply.SERVICE_READY: "repro-cr ESMTP service ready",
    Reply.OK: "ok",
    Reply.CLOSING: "bye",
    Reply.START_MAIL_INPUT: "end data with <CRLF>.<CRLF>",
    Reply.SERVICE_UNAVAILABLE: "service unavailable, try again later",
    Reply.SYNTAX_ERROR: "syntax error",
    Reply.PARAM_SYNTAX: "syntax error in parameters",
    Reply.BAD_SEQUENCE: "bad sequence of commands",
    Reply.MAILBOX_UNAVAILABLE: "mailbox unavailable",
    Reply.RELAY_DENIED: "relaying denied",
    Reply.BLACKLISTED: "rejected",
    Reply.CONTENT_REJECTED: "message exceeds maximum size",
    Reply.DNS_TEMPFAIL: "sender domain lookup deferred",
    TOO_MANY_RCPTS: "too many recipients",
}


class SmtpFrontend:
    """Owns the listening socket and the per-session protocol loops."""

    def __init__(
        self,
        service: LiveCrService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
        command_deadline: float = 30.0,
        data_deadline: float = 60.0,
        session_deadline: float = 600.0,
        reply_deadline: float = 15.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_message_bytes = max_message_bytes
        self.command_deadline = command_deadline
        self.data_deadline = data_deadline
        self.session_deadline = session_deadline
        #: How long DATA waits for the engine's verdict before tempfailing.
        self.reply_deadline = reply_deadline
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_COMMAND_LINE * 4
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- session ------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stats = self.service.stats
        stats.sessions += 1
        stats.sessions_open += 1
        try:
            await asyncio.wait_for(
                self._session(reader, writer), self.session_deadline
            )
        except (asyncio.TimeoutError, ConnectionError, asyncio.IncompleteReadError):
            # Session budget exhausted or the peer vanished; one best-effort
            # 421 and the socket goes away.
            try:
                self._reply(writer, Reply.SERVICE_UNAVAILABLE)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            stats.sessions_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client_ip = peer[0] if peer else ""
        self._reply(writer, Reply.SERVICE_READY)
        await writer.drain()

        greeted = False
        mail_from: Optional[str] = None
        rcpt_to: Optional[str] = None
        syntax_errors = 0

        while True:
            line = await self._read_line(reader, self.command_deadline)
            if line is None:
                return  # peer closed or CRLF violation already answered
            if isinstance(line, int):
                self._reply(writer, line)
                await writer.drain()
                syntax_errors += 1
                if syntax_errors > MAX_SYNTAX_ERRORS:
                    return
                continue
            verb, _, argument = line.partition(" ")
            verb = verb.upper()
            argument = argument.strip()

            if verb in ("EHLO", "HELO"):
                greeted = True
                mail_from = rcpt_to = None
                self._reply(writer, Reply.OK, "repro-cr at your service")
            elif verb == "NOOP":
                self._reply(writer, Reply.OK)
            elif verb == "RSET":
                mail_from = rcpt_to = None
                self._reply(writer, Reply.OK)
            elif verb == "QUIT":
                self._reply(writer, Reply.CLOSING)
                await writer.drain()
                return
            elif verb == "MAIL":
                if not greeted or mail_from is not None:
                    self._reply(writer, Reply.BAD_SEQUENCE)
                else:
                    address = _parse_path(argument, "FROM")
                    if address is None:
                        self.service.stats.malformed += 1
                        self._reply(writer, Reply.PARAM_SYNTAX)
                    elif address != "" and not is_well_formed(address):
                        self.service.stats.malformed += 1
                        self._reply(writer, Reply.PARAM_SYNTAX)
                    else:
                        mail_from = address
                        self._reply(writer, Reply.OK)
            elif verb == "RCPT":
                if mail_from is None:
                    self._reply(writer, Reply.BAD_SEQUENCE)
                elif rcpt_to is not None:
                    self._reply(writer, TOO_MANY_RCPTS)
                else:
                    address = _parse_path(argument, "TO")
                    if address is None or not is_well_formed(address):
                        self.service.stats.malformed += 1
                        self._reply(writer, Reply.PARAM_SYNTAX)
                    elif self.service.route(address) is None:
                        self.service.stats.unrouted_rcpts += 1
                        self._reply(writer, Reply.MAILBOX_UNAVAILABLE)
                    else:
                        rcpt_to = address
                        self._reply(writer, Reply.OK)
            elif verb == "DATA":
                if mail_from is None or rcpt_to is None:
                    self._reply(writer, Reply.BAD_SEQUENCE)
                else:
                    code = await self._data(
                        reader, writer, mail_from, rcpt_to, client_ip
                    )
                    self._reply(writer, code)
                    mail_from = rcpt_to = None
            else:
                syntax_errors += 1
                self._reply(writer, Reply.SYNTAX_ERROR)
                if syntax_errors > MAX_SYNTAX_ERRORS:
                    await writer.drain()
                    return
            await writer.drain()

    async def _data(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        mail_from: str,
        rcpt_to: str,
        client_ip: str,
    ) -> int:
        self._reply(writer, Reply.START_MAIL_INPUT)
        await writer.drain()
        size = 0
        subject = ""
        in_headers = True
        oversized = False
        while True:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\n"), self.data_deadline
            )
            if raw == b".\r\n":
                break
            if raw.startswith(b".."):
                raw = raw[1:]  # dot-unstuffing
            size += len(raw)
            if size > self.max_message_bytes:
                oversized = True  # keep draining to the terminating dot
            if in_headers and not oversized:
                stripped = raw.rstrip(b"\r\n")
                if not stripped:
                    in_headers = False
                elif stripped.lower().startswith(b"subject:"):
                    subject = stripped[8:].strip().decode("utf-8", "replace")[:200]
        if oversized:
            return Reply.CONTENT_REJECTED
        record = {
            "kind": "mail",
            "mail_from": mail_from,
            "rcpt_to": rcpt_to,
            "size": size,
            "client_ip": client_ip,
            "subject": subject,
        }
        future = self.service.try_submit(record)
        if future is None:
            return Reply.SERVICE_UNAVAILABLE
        try:
            return await asyncio.wait_for(future, self.reply_deadline)
        except asyncio.TimeoutError:
            # The record may still land (it is queued); the client retries
            # against the at-least-once contract.
            self.service.stats.refused_deadline += 1
            return Reply.SERVICE_UNAVAILABLE

    async def _read_line(self, reader: asyncio.StreamReader, deadline: float):
        """One CRLF-terminated command line, decoded.

        Returns the string without its CRLF, an ``int`` reply code for a
        protocol violation the caller should send (bare LF, overlong
        line), or ``None`` when the connection ended."""
        try:
            raw = await asyncio.wait_for(reader.readuntil(b"\n"), deadline)
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            return Reply.SYNTAX_ERROR
        if not raw.endswith(b"\r\n"):
            return Reply.SYNTAX_ERROR  # bare LF: CRLF-strict
        if len(raw) > MAX_COMMAND_LINE:
            return Reply.SYNTAX_ERROR
        try:
            return raw[:-2].decode("ascii")
        except UnicodeDecodeError:
            return Reply.SYNTAX_ERROR

    def _reply(
        self, writer: asyncio.StreamWriter, code: int, text: Optional[str] = None
    ) -> None:
        message = text if text is not None else _TEXT.get(code, "")
        writer.write(f"{code} {message}\r\n".encode("ascii"))


def _parse_path(argument: str, keyword: str) -> Optional[str]:
    """Extract the address from ``FROM:<a@b>`` / ``TO:<a@b>`` syntax.

    Returns the address (``""`` for the null reverse-path ``<>``), or
    ``None`` on syntax we refuse. ESMTP parameters after the path are
    tolerated and ignored."""
    prefix = keyword + ":"
    if not argument.upper().startswith(prefix):
        return None
    rest = argument[len(prefix):].strip()
    if not rest.startswith("<"):
        return None
    end = rest.find(">")
    if end < 0:
        return None
    return rest[1:end]


__all__ = ["SmtpFrontend", "DEFAULT_MAX_MESSAGE_BYTES", "MAX_COMMAND_LINE"]
