"""``sstress`` — an open-loop load generator for the live service.

Open-loop means the arrival schedule is fixed *before* the run: message
``i`` is due at ``start + i/rate`` regardless of how the server is
coping, and its latency is measured **from that scheduled arrival**, not
from when the sender finally got around to writing bytes. A closed-loop
generator (send, wait for the reply, send again) self-throttles under
overload and hides exactly the queueing the ladder and the 421 paths
exist to handle; an open-loop one keeps offering load, which is why the
overload experiments use it.

The generator keeps ``connections`` persistent SMTP sessions; a
connection that dies (server kill, 421-then-close, reset) is reopened
with a short backoff and the in-flight message is counted as an error —
*not* retried, so ``acked`` counts distinct messages that received a 250
and is directly comparable against the ledger's ``accepted`` after a
crash (every acked message MUST be there; unacked ones may or may not).

``--scenario`` replays a declarative scenario from the pack through the
live server: each attack's volume becomes SPAM-stamped SMTP traffic from
per-campaign sender mailboxes aimed at the attacked company, compressed
into the run's wall-clock budget. The in-sim verdicts remain the ground
truth for what the attack *does*; the live replay demonstrates the
service survives the same composite offered load with the ledger
conserved.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.serve.service import LIVE_SENDER_DOMAIN_TEMPLATE, LIVE_SENDER_DOMAINS

#: Reconnect backoff bounds (seconds) when the server is unreachable.
RECONNECT_MIN = 0.05
RECONNECT_MAX = 0.5


@dataclass
class StressConfig:
    """One load-generation run."""

    smtp_port: int
    host: str = "127.0.0.1"
    web_port: Optional[int] = None
    #: Offered load, messages per second (the open-loop schedule).
    rate: float = 200.0
    messages: int = 500
    connections: int = 8
    spam_fraction: float = 0.7
    newsletter_fraction: float = 0.1
    body_bytes: int = 400
    seed: int = 1
    #: Replay a scenario from the pack instead of the synthetic mix.
    scenario: Optional[str] = None
    #: Explicit targets; fetched from ``/directory`` when empty.
    recipients: Sequence[str] = ()
    senders: Sequence[str] = ()
    #: Give up on one SMTP exchange after this long.
    exchange_deadline: float = 20.0


@dataclass
class _Outcome:
    """Mutable tally shared by the sender workers."""

    codes: dict = field(default_factory=dict)
    errors: int = 0
    reconnects: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    acked: int = 0


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def default_senders(count: int = 64) -> List[str]:
    """Deterministic sender mailboxes across the live-generator domains."""
    return [
        f"lg{i:03d}@" + LIVE_SENDER_DOMAIN_TEMPLATE.format(i=i % LIVE_SENDER_DOMAINS)
        for i in range(count)
    ]


def build_messages(
    config: StressConfig, recipients: Sequence[str], senders: Sequence[str]
) -> List[Tuple[str, str, str]]:
    """The deterministic ``(mail_from, rcpt_to, subject)`` workload."""
    rng = random.Random(config.seed)
    messages = []
    for i in range(config.messages):
        roll = rng.random()
        if roll < config.spam_fraction:
            subject = f"SPAM: limited offer #{i}"
        elif roll < config.spam_fraction + config.newsletter_fraction:
            subject = f"NEWS: weekly digest #{i}"
        else:
            subject = f"meeting notes #{i}"
        messages.append(
            (rng.choice(list(senders)), rng.choice(list(recipients)), subject)
        )
    return messages


def scenario_messages(
    scenario_name: str, directory: dict, messages_cap: int, seed: int
) -> List[Tuple[str, str, str]]:
    """Compile a pack scenario's attacks into a live SMTP workload.

    Volume scales with each attack's ``messages_per_day * duration_days``
    (proportionally capped at *messages_cap*), senders are per-campaign
    mailboxes so the engine's dedup/whitelist behaviour matches a real
    campaign, and subjects carry the SPAM ground-truth stamp plus the
    campaign tag for post-hoc inspection.
    """
    from repro.scenarios import load_scenario

    spec = load_scenario(scenario_name)
    by_company = {c["company_id"]: c["users"] for c in directory["companies"]}
    rng = random.Random(seed)
    planned: List[Tuple[str, str, str]] = []
    totals = [
        max(1, int(a.messages_per_day * a.duration_days)) for a in spec.attacks
    ]
    scale = min(1.0, messages_cap / max(1, sum(totals)))
    for attack_index, attack in enumerate(spec.attacks):
        users = by_company.get(attack.company_id)
        if not users:  # scenario targets a company this preset lacks
            continue
        params = dict(attack.params)
        n_senders = int(params.get("n_senders", 4))
        senders = [
            f"{attack.kind}-{attack_index}-s{j}@"
            + LIVE_SENDER_DOMAIN_TEMPLATE.format(
                i=(attack_index * 7 + j) % LIVE_SENDER_DOMAINS
            )
            for j in range(max(1, n_senders))
        ]
        volume = max(1, int(totals[attack_index] * scale))
        for i in range(volume):
            planned.append(
                (
                    rng.choice(senders),
                    rng.choice(users),
                    f"SPAM: [{attack.kind}] blast {i}",
                )
            )
    rng.shuffle(planned)  # interleave the attacks like concurrent campaigns
    return planned


async def fetch_directory(host: str, web_port: int, deadline: float = 10.0) -> dict:
    """GET ``/directory`` from the web frontend (raw HTTP, no deps)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, web_port), deadline
    )
    try:
        writer.write(
            f"GET /directory HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), deadline)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ")[1])
    if status != 200:
        raise RuntimeError(f"/directory returned HTTP {status}")
    return json.loads(body)


class _SmtpSession:
    """One persistent sender connection with lazy (re)connect."""

    def __init__(self, host: str, port: int, outcome: _Outcome) -> None:
        self.host = host
        self.port = port
        self.outcome = outcome
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        await self.reader.readline()  # 220 greeting
        self.writer.write(b"EHLO sstress\r\n")
        await self.writer.drain()
        await self.reader.readline()

    def _drop(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = self.writer = None

    async def send(
        self, mail_from: str, rcpt_to: str, subject: str, body: bytes, deadline: float
    ) -> Optional[int]:
        """One full MAIL→DATA exchange; the final reply code, or ``None``
        when the connection failed mid-exchange (message NOT acked)."""
        try:
            if self.reader is None:
                await asyncio.wait_for(self._connect(), deadline)
                self.outcome.reconnects += 1
            reader, writer = self.reader, self.writer
            for command in (
                f"MAIL FROM:<{mail_from}>\r\n",
                f"RCPT TO:<{rcpt_to}>\r\n",
                "DATA\r\n",
            ):
                writer.write(command.encode())
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), deadline)
                if not line:
                    raise ConnectionResetError("closed mid-exchange")
                code = int(line[:3])
                if code >= 400:
                    # Envelope refused (421 backpressure, 550, ...): the
                    # transaction is over; reset state for the next try.
                    writer.write(b"RSET\r\n")
                    await writer.drain()
                    await asyncio.wait_for(reader.readline(), deadline)
                    return code
            writer.write(
                f"Subject: {subject}\r\n\r\n".encode() + body + b"\r\n.\r\n"
            )
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), deadline)
            if not line:
                raise ConnectionResetError("closed before verdict")
            return int(line[:3])
        except (ConnectionError, asyncio.TimeoutError, OSError, ValueError):
            self._drop()
            return None


async def run_stress(
    config: StressConfig, stop: Optional[asyncio.Event] = None
) -> dict:
    """Drive the schedule; returns the report dict (also JSON-dumped by
    the CLI). When *stop* is set mid-run (the chaos harness does, right
    after SIGKILLing the server) workers abandon the unsent remainder and
    the partial report is returned — ``acked`` stays exact."""
    recipients = list(config.recipients)
    senders = list(config.senders)
    if config.web_port is not None and (not recipients or config.scenario):
        directory = await fetch_directory(config.host, config.web_port)
    else:
        directory = None
    if config.scenario:
        if directory is None:
            raise RuntimeError("--scenario needs the web port for /directory")
        workload = scenario_messages(
            config.scenario, directory, config.messages, config.seed
        )
    else:
        if not recipients:
            if directory is None:
                raise RuntimeError("no recipients and no web port to discover them")
            recipients = [
                user for c in directory["companies"] for user in c["users"]
            ]
        if not senders:
            senders = default_senders()
        workload = build_messages(config, recipients, senders)

    body = b"x" * config.body_bytes
    outcome = _Outcome()
    start = time.monotonic()
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        session = _SmtpSession(config.host, config.smtp_port, outcome)
        backoff = RECONNECT_MIN
        while True:
            if stop is not None and stop.is_set():
                return
            index = next_index
            if index >= len(workload):
                return
            next_index += 1
            due = start + index / config.rate
            delay = due - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            mail_from, rcpt_to, subject = workload[index]
            code = await session.send(
                mail_from, rcpt_to, subject, body, config.exchange_deadline
            )
            if code is None:
                outcome.errors += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, RECONNECT_MAX)
                continue
            backoff = RECONNECT_MIN
            outcome.codes[code] = outcome.codes.get(code, 0) + 1
            if code == 250:
                outcome.acked += 1
                outcome.latencies_ms.append(
                    (time.monotonic() - due) * 1000.0
                )

    workers = [
        asyncio.ensure_future(worker())
        for _ in range(min(config.connections, max(1, len(workload))))
    ]
    try:
        await asyncio.gather(*workers)
    finally:
        for task in workers:
            task.cancel()
    elapsed = max(time.monotonic() - start, 1e-9)
    completed = sum(outcome.codes.values())
    return {
        "offered": len(workload),
        "offered_rate": config.rate,
        "completed": completed,
        "acked": outcome.acked,
        "codes": {str(code): n for code, n in sorted(outcome.codes.items())},
        "errors": outcome.errors,
        "reconnects": outcome.reconnects,
        "elapsed_seconds": round(elapsed, 3),
        "sustained_msgs_per_sec": round(completed / elapsed, 1),
        "accept_latency_ms": {
            "p50": round(_percentile(outcome.latencies_ms, 0.50), 2),
            "p99": round(_percentile(outcome.latencies_ms, 0.99), 2),
            "max": round(max(outcome.latencies_ms), 2)
            if outcome.latencies_ms
            else 0.0,
        },
        "scenario": config.scenario,
        "seed": config.seed,
    }


__all__ = [
    "StressConfig",
    "build_messages",
    "default_senders",
    "fetch_directory",
    "run_stress",
    "scenario_messages",
]
