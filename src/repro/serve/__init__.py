"""Live service mode: an asyncio SMTP/HTTP frontend over the CR engine.

The simulation proves the *mechanism*; this package serves it. A real
RFC-5321 listener (:mod:`.smtp_server`) and a CAPTCHA/digest web app
(:mod:`.web`) feed the same :class:`repro.core.engine.CompanyInstallation`
choke points the ledger instruments, with three robustness layers on top:

* bounded admission with 421-tempfail backpressure and a graceful
  degradation ladder (:mod:`.admission`),
* exponential backoff + jitter on the outbound challenge path
  (:mod:`.retry`),
* a length-framed write-ahead log fsynced *before* the 250 goes out
  (:mod:`.wal`), replayed on startup and reconciled against the
  :class:`~repro.core.ledger.MessageLedger` — ``kill -9`` at any instant
  loses zero accepted messages.

:mod:`.sstress` is the open-loop load generator and chaos driver that
proves those claims from outside the process.
"""
