"""The live engine: admission queue → WAL → single-writer worker → reply.

:class:`LiveCrService` wraps the deterministic CR core — the same
:class:`~repro.core.engine.CompanyInstallation` objects the simulation
builds — behind an asyncio pipeline:

1. A frontend handler (SMTP or HTTP) builds a record and calls
   :meth:`try_submit`. A full admission queue refuses immediately — that
   becomes the 421 — so overload backs pressure onto the sender instead
   of growing unbounded state.
2. The single engine worker drains the queue in batches. For each batch
   it stamps arrival times, appends every record to the WAL, then issues
   **one** fsync (group commit), and only then applies the records to the
   engine and resolves the handlers' futures. No reply — 250 or 5xx — can
   reach a client before its record is durable: that ordering *is* the
   zero-loss invariant.
3. The worker also feeds queue depth to the degradation ladder and pushes
   the resulting shed level into every company's dispatcher.

Time: the engine runs on simulated time. Each record is stamped with a
sim-time arrival ``t`` derived from the wall clock (scaled by
``time_scale``), and the worker advances ``simulator.run(until=t)``
before applying — so digests, quarantine expiry, and challenge retries
genuinely fire while the server idles. On restart, replaying the WAL
re-drives the identical ``run(until)``/apply sequence, which is why
recovery is deterministic.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Union

from repro.analysis.store import LogStore
from repro.core.config import FilterChainSpec
from repro.core.engine import CompanyInstallation
from repro.core.filters.base import FilterChain
from repro.core.filters.content import OnlineNaiveBayesFilter
from repro.core.filters.reputation import SenderReputationFilter
from repro.core.message import EmailMessage, MessageKind, SenderClass, reset_msg_ids
from repro.core.mta_in import DropReason
from repro.experiments.runner import (
    _seed_newsletter_whitelists,
    _seed_user_lists,
)
from repro.net.hosts import RemoteMailHost
from repro.net.smtp import Reply
from repro.serve.admission import DegradationLadder, LiveStats
from repro.serve.retry import RetryPolicy, backoff_factory
from repro.serve.wal import WriteAheadLog
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams
from repro.util.simtime import DAY
from repro.workload.calibration import DEFAULT_CALIBRATION
from repro.workload.entities import build_world
from repro.workload.scale import ScaleConfig, get_preset

#: MTA-IN verdict → SMTP reply for the live DATA acknowledgement.
_DROP_REPLY = {
    DropReason.MALFORMED: Reply.PARAM_SYNTAX,
    DropReason.UNRESOLVABLE_DOMAIN: Reply.DNS_TEMPFAIL,
    DropReason.NO_RELAY: Reply.RELAY_DENIED,
    DropReason.SENDER_REJECTED: Reply.BLACKLISTED,
    DropReason.UNKNOWN_RECIPIENT: Reply.MAILBOX_UNAVAILABLE,
}

#: Ground-truth message kind from the subject prefix the load generator
#: stamps; anything unstamped counts as legit mail.
_KIND_PREFIXES = (
    ("SPAM:", MessageKind.SPAM),
    ("NEWS:", MessageKind.NEWSLETTER),
)

#: Sender domains the live frontend pre-registers in the simulated DNS
#: zone so external load-generator traffic resolves (a live deployment's
#: senders exist in real DNS; ours exist in the simulated one).
LIVE_SENDER_DOMAINS = 32
LIVE_SENDER_DOMAIN_TEMPLATE = "ext-{i}.livegen.example"


class _Item:
    __slots__ = ("record", "future")

    def __init__(self, record: dict, future: Optional[asyncio.Future]) -> None:
        self.record = record
        self.future = future


class LiveCrService:
    """The CR engine served live, with WAL durability and backpressure."""

    def __init__(
        self,
        preset: Union[str, ScaleConfig] = "tiny",
        seed: int = 7,
        wal_path: str = "serve.wal",
        *,
        # The live deployment runs the full hybrid chain (product filters
        # plus the PR 9 auxiliary members) so the degradation ladder has
        # sheddable stages; pass "default" for the bare product chain.
        chain="hybrid",
        audit: bool = False,
        queue_size: int = 256,
        batch_max: int = 64,
        time_scale: float = 1.0,
        engine_delay: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> None:
        self.scale = get_preset(preset) if isinstance(preset, str) else preset
        self.seed = seed
        self.time_scale = time_scale
        #: Artificial per-message apply cost (seconds). Zero in production;
        #: the overload tests use it to pin the service's capacity far
        #: below the load generator's offered rate.
        self.engine_delay = engine_delay
        self.batch_max = batch_max
        self.wal = WriteAheadLog(wal_path)
        self.stats = LiveStats()
        self.ladder = ladder or DegradationLadder(capacity=queue_size)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self._worker: Optional[asyncio.Task] = None
        self._closed = False
        self.ready = False

        calibration = DEFAULT_CALIBRATION
        reset_msg_ids()
        streams = RngStreams(seed)
        self.world = build_world(self.scale, calibration, streams, None, None)
        self.simulator = Simulator()
        self.store = LogStore()
        self.horizon = self.scale.n_days * DAY
        chain_spec = FilterChainSpec.parse(chain)
        factory = backoff_factory(retry_policy or RetryPolicy())
        self.installations: Dict[str, CompanyInstallation] = {}
        for company in self.world.companies:
            installation = CompanyInstallation(
                config=company.config,
                simulator=self.simulator,
                internet=self.world.internet,
                resolver=self.world.resolver,
                store=self.store,
                dnsbl_services=self.world.services,
                rng=streams.stream(f"antivirus/{company.company_id}"),
                hooks=None,
                challenge_size=calibration.challenge_size,
                audit=audit,
                chain=chain_spec,
                outbound_factory=factory,
            )
            _seed_user_lists(installation, company, calibration)
            installation.start(until=self.horizon)
            # Shed level 1 swaps in the chain minus the PR 9 auxiliary
            # members (adaptive content + reputation) — the expensive,
            # sheddable classifiers.
            installation.dispatcher.shed_chain = FilterChain(
                [
                    f
                    for f in installation.filter_chain.filters
                    if not isinstance(
                        f, (OnlineNaiveBayesFilter, SenderReputationFilter)
                    )
                ]
            )
            self.installations[company.company_id] = installation
        _seed_newsletter_whitelists(
            self.installations, self.world, calibration, streams
        )
        self._register_live_senders()
        self._route_cache: Dict[str, Optional[CompanyInstallation]] = {}

        #: Records applied to the engine this process (replayed + live).
        self.applied = 0
        self.applied_mail = 0
        self.applied_web = 0
        #: Mail records that no installation routes (WAL'd pre-check bug
        #: guard — must stay 0 because RCPT pre-checks routing).
        self.unrouted_applied = 0
        self.last_reconciliation: dict = {}
        #: Sim time of the last applied/stamped record (monotonic floor).
        self._last_t = 0.0
        self._wall_base: Optional[float] = None
        self._sim_serve_base = 0.0

    # -- construction helpers ---------------------------------------------

    def _register_live_senders(self) -> None:
        """Give live external senders a footing in the simulated substrate:
        resolvable mail domains (MTA-IN's DNS check), catch-all hosts
        (challenge emails get delivered, not endlessly retried), and PTR
        records for loopback client IPs (the reverse-DNS filter)."""
        registry = self.world.registry
        for i in range(LIVE_SENDER_DOMAINS):
            domain = LIVE_SENDER_DOMAIN_TEMPLATE.format(i=i)
            ip = f"203.0.113.{i + 1}"
            registry.register_mail_domain(domain, ip)
            self.world.internet.register_host(
                RemoteMailHost(domain, ip, catch_all=True)
            )
        for ip in ("127.0.0.1", "::1"):
            registry.register_client_ptr(ip, "localhost.livegen.example")

    # -- routing -----------------------------------------------------------

    def route(self, rcpt: str) -> Optional[CompanyInstallation]:
        """The installation whose MTA accepts mail for *rcpt*'s domain."""
        domain = rcpt.rsplit("@", 1)[-1].lower()
        if domain in self._route_cache:
            return self._route_cache[domain]
        found = None
        for installation in self.installations.values():
            if installation.config.accepts_domain(domain):
                found = installation
                break
        self._route_cache[domain] = found
        return found

    # -- clock -------------------------------------------------------------

    def _sim_now(self) -> float:
        """Sim-time arrival stamp for a record admitted right now."""
        if self._wall_base is None:
            return max(self._last_t, self.simulator.now)
        elapsed = (time.monotonic() - self._wall_base) * self.time_scale
        return max(self._sim_serve_base + elapsed, self._last_t)

    # -- lifecycle ----------------------------------------------------------

    def recover(self) -> dict:
        """Open the WAL, replay every record through the engine, reconcile
        against the ledger. Returns the reconciliation report. Must be
        called (once) before serving."""
        records = self.wal.open()
        for seq, record in enumerate(records, start=1):
            self._apply(seq, record)
        self._last_t = self.simulator.now
        self._sim_serve_base = self.simulator.now
        self._wall_base = time.monotonic()
        self.last_reconciliation = self.reconcile()
        self.ready = True
        return self.last_reconciliation

    async def start(self) -> None:
        """Arm the engine worker (call after :meth:`recover`)."""
        self._worker = asyncio.get_running_loop().create_task(self._run_worker())

    async def close(self) -> None:
        """Graceful shutdown: drain the admission queue, stop the worker,
        close the WAL."""
        self._closed = True
        if self._worker is not None:
            # A sentinel unblocks the worker if the queue is empty.
            self._queue.put_nowait(None)
            await self._worker
            self._worker = None
        self.wal.close()
        self.ready = False

    # -- admission -----------------------------------------------------------

    def try_submit(self, record: dict) -> Optional[asyncio.Future]:
        """Admit *record* or refuse. Returns a future resolving to the SMTP
        reply code after the record is durable and applied, or ``None``
        when the queue is full (caller replies 421)."""
        if self._closed or self._queue.full():
            self.stats.refused_full += 1
            return None
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(_Item(record, future))
        return future

    # -- the single-writer worker ---------------------------------------------

    async def _run_worker(self) -> None:
        while True:
            item = await self._queue.get()
            batch: List[_Item] = [] if item is None else [item]
            stop = item is None
            while len(batch) < self.batch_max:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            if batch:
                self._process_batch(batch)
                if self.engine_delay:
                    # Capacity throttle (tests): pretend each message costs
                    # this much engine time, without burning CPU.
                    await asyncio.sleep(self.engine_delay * len(batch))
            level = self.ladder.observe(self._queue.qsize())
            self._apply_shed_level(level)
            if stop and self._queue.empty():
                return

    def _process_batch(self, batch: List[_Item]) -> None:
        # Stamp + journal the whole batch, then one fsync covers it.
        seqs = []
        for item in batch:
            t = self._sim_now()
            self._last_t = t
            item.record["t"] = t
            seqs.append(self.wal.append(item.record))
        self.wal.flush()
        self.stats.fsync_batches += 1
        self.stats.fsync_records += len(batch)
        # Only now — records durable — apply and answer.
        for seq, item in zip(seqs, batch):
            code = self._apply(seq, item.record)
            future = item.future
            if future is not None and not future.done():
                future.set_result(code)
                if code == Reply.OK and item.record.get("kind") == "mail":
                    self.stats.acked += 1
                    self.stats.bytes_in += item.record.get("size", 0)

    def _apply_shed_level(self, level: int) -> None:
        for installation in self.installations.values():
            installation.dispatcher.shed_level = level

    # -- record application (live and replay take the same path) -------------

    def _apply(self, seq: int, record: dict) -> int:
        t = record.get("t", 0.0)
        if t > self.simulator.now:
            self.simulator.run(until=min(t, self.horizon))
        self.applied += 1
        if record.get("kind") == "web":
            return self._apply_web(record)
        return self._apply_mail(seq, record)

    def _apply_mail(self, seq: int, record: dict) -> int:
        self.applied_mail += 1
        installation = self.route(record["rcpt_to"])
        if installation is None:
            self.unrouted_applied += 1
            return Reply.MAILBOX_UNAVAILABLE
        subject = record.get("subject", "")
        kind = MessageKind.LEGIT
        for prefix, stamped_kind in _KIND_PREFIXES:
            if subject.startswith(prefix):
                kind = stamped_kind
                break
        message = EmailMessage(
            msg_id=seq,
            t=record["t"],
            env_from=record["mail_from"],
            env_to=record["rcpt_to"],
            subject=subject,
            size=record["size"],
            client_ip=record.get("client_ip", ""),
            kind=kind,
            sender_class=SenderClass.REAL,
            campaign_id=record.get("campaign"),
            has_virus=False,
        )
        drop_reason = installation.handle_inbound(message)
        if drop_reason is not None:
            self.stats.mta_dropped += 1
            return _DROP_REPLY.get(drop_reason, Reply.MAILBOX_UNAVAILABLE)
        return Reply.OK

    def _apply_web(self, record: dict) -> int:
        self.applied_web += 1
        installation = self.installations.get(record.get("company", ""))
        if installation is None:
            self.stats.web_stale += 1
            return Reply.MAILBOX_UNAVAILABLE
        action = record.get("action")
        ok = False
        if action in ("open", "attempt", "solve"):
            challenge = installation.challenge_manager.get_or_none(
                record.get("challenge_id", -1)
            )
            if challenge is not None:
                ok = True
                if action == "open":
                    installation.record_web_open(challenge.challenge_id)
                elif action == "attempt":
                    installation.record_web_attempt(
                        challenge.challenge_id, bool(record.get("success"))
                    )
                else:
                    installation.solve_challenge(challenge.challenge_id)
        elif action == "release":
            ok = installation.release_via_web(
                record.get("user", ""), record.get("msg_id", -1)
            )
        elif action == "delete":
            ok = installation.delete_via_web(
                record.get("user", ""), record.get("msg_id", -1)
            )
        if ok:
            self.stats.web_applied += 1
            return Reply.OK
        self.stats.web_stale += 1
        return Reply.MAILBOX_UNAVAILABLE

    # -- reconciliation -------------------------------------------------------

    def reconcile(self) -> dict:
        """Cross-check WAL, apply counters, and per-company ledgers.

        The contract after any restart (including kill -9 at any instant):

        * every WAL record was applied exactly once this process
          (``applied == wal.appended_seq``),
        * every applied mail record is accounted: accepted into a ledger,
          refused by MTA-IN, or unroutable,
        * every company ledger satisfies the live conservation partition
          (``accepted == terminals + in quarantine``).
        """
        snapshots = {
            company_id: installation.ledger.snapshot()
            for company_id, installation in sorted(self.installations.items())
        }
        accepted = sum(s.accepted for s in snapshots.values())
        ledger_ok = all(s.live_conserved for s in snapshots.values())
        applied_ok = self.applied == self.wal.appended_seq
        mail_ok = (
            accepted + self.stats.mta_dropped + self.unrouted_applied
            == self.applied_mail
        )
        return {
            "reconciled": bool(ledger_ok and applied_ok and mail_ok),
            "wal_records": self.wal.appended_seq,
            "torn_tail_bytes": self.wal.torn_tail_bytes,
            "applied": self.applied,
            "applied_mail": self.applied_mail,
            "applied_web": self.applied_web,
            "accepted": accepted,
            "mta_dropped": self.stats.mta_dropped,
            "unrouted_applied": self.unrouted_applied,
            "ledger_live_conserved": ledger_ok,
            "per_company": {
                company_id: {
                    "accepted": s.accepted,
                    "delivered": s.delivered,
                    "black_dropped": s.black_dropped,
                    "filter_dropped": s.filter_dropped,
                    "quarantined_total": s.quarantined_total,
                    "released": s.released,
                    "deleted": s.deleted,
                    "expired": s.expired,
                    "in_quarantine": s.in_quarantine,
                    "live_conserved": s.live_conserved,
                }
                for company_id, s in snapshots.items()
            },
        }

    # -- views ---------------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "ok" if self.ready else "starting",
            "shed_level": self.ladder.level,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "transitions": len(self.ladder.transitions),
        }

    def stats_view(self) -> dict:
        view = {
            "service": self.stats.as_dict(),
            "health": self.health(),
            "shed_transitions": self.ladder.transitions_as_dicts(),
            "reconciliation": self.reconcile(),
            "recovery": self.last_reconciliation,
            "sim_now": self.simulator.now,
            "events_processed": self.simulator.events_processed,
        }
        return view

    def directory(self) -> dict:
        """What the load generator needs to aim at this deployment."""
        return {
            "companies": [
                {
                    "company_id": installation.config.company_id,
                    "domain": installation.config.domain,
                    "users": [
                        f"{local}@{installation.config.domain}"
                        for local in sorted(installation.config.users)[:20]
                    ],
                }
                for installation in self.installations.values()
            ],
            "sender_domains": [
                LIVE_SENDER_DOMAIN_TEMPLATE.format(i=i)
                for i in range(LIVE_SENDER_DOMAINS)
            ],
        }


__all__ = ["LiveCrService", "LIVE_SENDER_DOMAINS", "LIVE_SENDER_DOMAIN_TEMPLATE"]
