"""Length-framed append-only write-ahead log with group-commit fsync.

The zero-loss contract of the live frontend rests on one ordering: a
message's WAL record is appended **and fsynced** before the SMTP ``250``
leaves the socket. Whatever the kernel, the process, or ``kill -9`` does
after that instant, every acknowledged message is on disk; startup replay
re-drives the engine from the log and the
:class:`~repro.core.ledger.MessageLedger` re-derives the exact same
accounting. (The converse is *at-least-once*: a record can reach disk and
the client still never see its 250 — the client retries, which is the
normal SMTP contract.)

Frame format, little-endian::

    [u32 payload_len][payload bytes][u32 crc32(payload)]

Payloads are UTF-8 JSON objects; the log itself never interprets them.
A torn tail — a frame cut anywhere by a crash, or a CRC mismatch in the
final frame — is detected on open and truncated away: those bytes were
never acknowledged, so dropping them loses nothing.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

_U32 = struct.Struct("<I")
_FRAME_OVERHEAD = 8  # length prefix + crc suffix

#: Sanity bound on a single payload: anything larger is treated as
#: corruption (a garbage length prefix), not a legitimate record.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024


class WalCorruption(RuntimeError):
    """A non-tail frame failed to decode — the log is damaged beyond the
    torn-tail case that crash recovery legally produces."""


def _scan_frames(data: bytes) -> Tuple[List[bytes], int]:
    """Split *data* into full valid frames.

    Returns ``(payloads, good_end)`` where *good_end* is the byte offset
    just past the last intact frame. Any trailing bytes past *good_end*
    are a torn tail: an incomplete header, an incomplete payload/crc, or
    a crc mismatch in the final frame. A crc mismatch with *more* frames
    after it is not a torn write — that is mid-file corruption and raises
    :class:`WalCorruption`.
    """
    payloads: List[bytes] = []
    offset = 0
    end = len(data)
    while True:
        if offset + _U32.size > end:
            break  # torn (or clean EOF): header incomplete
        (length,) = _U32.unpack_from(data, offset)
        if length > MAX_PAYLOAD_BYTES:
            break  # garbage length prefix — treat as torn tail
        frame_end = offset + _U32.size + length + _U32.size
        if frame_end > end:
            break  # payload/crc incomplete
        payload = data[offset + _U32.size : offset + _U32.size + length]
        (crc,) = _U32.unpack_from(data, frame_end - _U32.size)
        if crc != zlib.crc32(payload):
            if frame_end < end:
                raise WalCorruption(
                    f"crc mismatch at offset {offset} with "
                    f"{end - frame_end} bytes following — mid-log damage, "
                    f"not a torn tail"
                )
            break  # torn tail: crash landed mid-crc or mid-payload
        payloads.append(payload)
        offset = frame_end
    return payloads, offset


def scan_payloads(path: str) -> Tuple[List[dict], bool]:
    """Read-only scan of the log at *path* (no truncation, no lock).

    Returns ``(records, torn)``. Used by tests and the external chaos
    harness to count durable records while (or after) a server owns the
    file; :meth:`WriteAheadLog.open` is the mutating form the server uses.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return [], False
    payloads, good_end = _scan_frames(data)
    return [json.loads(p) for p in payloads], good_end != len(data)


class WriteAheadLog:
    """One append-only log file plus its replay/truncate logic.

    Appends are buffered; :meth:`flush` pushes them through the OS down to
    the platter (``fsync``) and advances :attr:`flushed_seq`. Sequence
    numbers are 1-based and count records ever written to this file, so
    after replaying N records the next append is seq N+1 — the live
    engine uses the seq as the message id, which is what makes replay
    deterministic.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[object] = None
        #: Seq of the last record appended (buffered, not necessarily durable).
        self.appended_seq = 0
        #: Seq of the last record known fsynced.
        self.flushed_seq = 0
        #: Bytes discarded from a torn tail at open time (0 = clean).
        self.torn_tail_bytes = 0

    # -- lifecycle --------------------------------------------------------

    def open(self) -> List[dict]:
        """Replay existing records, truncate any torn tail, open for append.

        Returns the decoded records in append order. After this call the
        replayed records count as flushed (they survived at least one
        crash, so they are durable by construction).
        """
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            data = b""
        payloads, good_end = _scan_frames(data)
        self.torn_tail_bytes = len(data) - good_end
        self._fh = open(self.path, "ab")
        if self.torn_tail_bytes:
            self._fh.truncate(good_end)
            self._fh.seek(good_end)
        self.appended_seq = self.flushed_seq = len(payloads)
        return [json.loads(p) for p in payloads]

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    # -- writes -----------------------------------------------------------

    def append(self, record: dict) -> int:
        """Buffer one record; returns its seq. Not durable until a
        :meth:`flush` covers it."""
        assert self._fh is not None, "WAL not open"
        payload = json.dumps(record, separators=(",", ":")).encode()
        self._fh.write(
            _U32.pack(len(payload)) + payload + _U32.pack(zlib.crc32(payload))
        )
        self.appended_seq += 1
        return self.appended_seq

    def flush(self) -> int:
        """Flush + fsync everything appended so far; returns the covered
        seq. One call durably commits the whole buffered batch — this is
        the group in group commit."""
        assert self._fh is not None, "WAL not open"
        target = self.appended_seq
        if target > self.flushed_seq:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.flushed_seq = target
        return self.flushed_seq

    def iter_records(self) -> Iterator[dict]:  # pragma: no cover - debug aid
        records, _ = scan_payloads(self.path)
        return iter(records)


__all__ = [
    "MAX_PAYLOAD_BYTES",
    "WalCorruption",
    "WriteAheadLog",
    "scan_payloads",
]
