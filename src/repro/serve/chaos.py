"""The kill -9 chaos harness: load, murder, restart, reconcile, repeat.

This is the executable form of the durability claim. Each round boots
the server as a *real subprocess*, offers open-loop load with
:mod:`~repro.serve.sstress`, SIGKILLs the process at a randomized moment
mid-burst (no atexit, no flush, no goodbye), restarts it, and asserts
the conservation contract against ``/stats``:

* the restarted ledgers reconcile (``live_conserved`` per company, every
  WAL record applied exactly once),
* every message any client ever saw a 250 for is in the ledger —
  cumulative ``acked`` across all rounds ≤ ``accepted`` after replay
  (strict equality is not promised: a record can go durable and the 250
  die on the wire with the process; at-least-once, never at-most-zero),
* ``accepted`` never moves backwards across a restart.

A final graceful SIGTERM checks the other half of the story: clean
drain, exit code 0, shutdown reconciliation printed and conserved. The
harness is a library so the pytest suite and ``scripts/serve_smoke.py``
run the identical logic; only the knob values differ.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import sys
from dataclasses import dataclass, field
from typing import List, Optional

from repro.serve.sstress import StressConfig, run_stress

#: How long to wait for the subprocess to announce its ports and pass
#: /readyz. World building at the test presets takes low seconds; CI
#: shared runners get generous slack.
START_DEADLINE = 120.0


class ChaosError(AssertionError):
    """A conservation or liveness assertion failed."""


async def _http_json(host: str, port: int, path: str, deadline: float = 10.0):
    """Status + parsed JSON body for a one-shot GET."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), deadline
    )
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), deadline)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), json.loads(body)


@dataclass
class ServerProcess:
    """One ``python -m repro serve`` subprocess and its endpoints."""

    wal_path: str
    endpoints_file: str
    preset: str = "tiny"
    seed: int = 7
    time_scale: float = 200.0
    queue_size: int = 256
    batch_max: int = 64
    engine_delay: float = 0.0
    host: str = "127.0.0.1"
    smtp_port: int = 0
    web_port: int = 0
    process: Optional[asyncio.subprocess.Process] = None
    endpoints: dict = field(default_factory=dict)

    async def start(self) -> dict:
        if os.path.exists(self.endpoints_file):
            os.unlink(self.endpoints_file)  # stale announcement = lies
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--preset",
            self.preset,
            "--seed",
            str(self.seed),
            "--wal",
            self.wal_path,
            "--endpoints-file",
            self.endpoints_file,
            "--time-scale",
            str(self.time_scale),
            "--queue-size",
            str(self.queue_size),
            "--batch-max",
            str(self.batch_max),
            "--engine-delay",
            str(self.engine_delay),
            env=env,
            stdout=asyncio.subprocess.PIPE,
        )
        deadline = asyncio.get_running_loop().time() + START_DEADLINE
        while not os.path.exists(self.endpoints_file):
            if self.process.returncode is not None:
                raise ChaosError(
                    f"server exited rc={self.process.returncode} before announcing"
                )
            if asyncio.get_running_loop().time() > deadline:
                raise ChaosError("server never wrote the endpoints file")
            await asyncio.sleep(0.05)
        with open(self.endpoints_file) as fh:
            self.endpoints = json.load(fh)
        self.smtp_port = self.endpoints["smtp_port"]
        self.web_port = self.endpoints["web_port"]
        while True:
            try:
                status, _ = await _http_json(self.host, self.web_port, "/readyz")
                if status == 200:
                    break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            if asyncio.get_running_loop().time() > deadline:
                raise ChaosError("server never became ready")
            await asyncio.sleep(0.05)
        return self.endpoints

    async def stats(self) -> dict:
        status, body = await _http_json(self.host, self.web_port, "/stats")
        if status != 200:
            raise ChaosError(f"/stats returned HTTP {status}")
        return body

    async def kill9(self) -> None:
        """SIGKILL — no drain, no fsync beyond what already happened."""
        assert self.process is not None
        self.process.kill()
        await self.process.wait()

    async def terminate(self) -> dict:
        """Graceful SIGTERM; returns ``{"exit_code", "shutdown"}``."""
        assert self.process is not None
        self.process.send_signal(signal.SIGTERM)
        stdout, _ = await asyncio.wait_for(
            self.process.communicate(), START_DEADLINE
        )
        shutdown = None
        for line in stdout.decode().splitlines():
            try:
                parsed = json.loads(line)
            except ValueError:
                continue
            if isinstance(parsed, dict) and "shutdown" in parsed:
                shutdown = parsed["shutdown"]
        return {"exit_code": self.process.returncode, "shutdown": shutdown}


async def run_chaos(
    workdir: str,
    *,
    kills: int = 20,
    preset: str = "tiny",
    seed: int = 7,
    rng_seed: int = 1234,
    rate: float = 300.0,
    messages_per_burst: int = 150,
    time_scale: float = 200.0,
    kill_window: tuple = (0.10, 0.45),
    connections: int = 6,
) -> dict:
    """*kills* rounds of boot → open-loop burst → randomized SIGKILL →
    restart → ledger reconciliation, then one clean burst for throughput
    numbers and a graceful shutdown. Raises :class:`ChaosError` on any
    conservation violation; returns the full report otherwise."""
    rng = random.Random(rng_seed)
    wal_path = os.path.join(workdir, "chaos.wal")
    endpoints_file = os.path.join(workdir, "endpoints.json")
    rounds: List[dict] = []
    cumulative_acked = 0
    last_accepted = 0

    def _check_restart(reconciliation: dict, where: str) -> None:
        nonlocal last_accepted
        if not reconciliation["reconciled"]:
            raise ChaosError(f"{where}: ledgers failed to reconcile: {reconciliation}")
        accepted = reconciliation["accepted"]
        if accepted < cumulative_acked:
            raise ChaosError(
                f"{where}: LOST MESSAGES — clients hold {cumulative_acked} "
                f"250-acks but the replayed ledger only accepted {accepted}"
            )
        if accepted < last_accepted:
            raise ChaosError(
                f"{where}: accepted went backwards ({last_accepted} → {accepted})"
            )
        last_accepted = accepted

    for round_index in range(kills):
        server = ServerProcess(
            wal_path, endpoints_file, preset=preset, seed=seed,
            time_scale=time_scale,
        )
        await server.start()
        stats = await server.stats()
        _check_restart(stats["reconciliation"], f"restart before round {round_index}")
        torn = stats["recovery"].get("torn_tail_bytes", 0) if stats["recovery"] else 0

        stop = asyncio.Event()
        burst = asyncio.ensure_future(
            run_stress(
                StressConfig(
                    smtp_port=server.smtp_port,
                    web_port=server.web_port,
                    rate=rate,
                    messages=messages_per_burst,
                    connections=connections,
                    seed=rng_seed + round_index,
                ),
                stop=stop,
            )
        )
        kill_after = rng.uniform(*kill_window) * (messages_per_burst / rate)
        await asyncio.sleep(kill_after)
        await server.kill9()
        stop.set()
        report = await burst
        cumulative_acked += report["acked"]
        rounds.append(
            {
                "round": round_index,
                "kill_after_s": round(kill_after, 3),
                "acked_this_burst": report["acked"],
                "errors": report["errors"],
                "codes": report["codes"],
                "torn_tail_bytes_on_boot": torn,
            }
        )

    # Verification boot: replay everything the murders left behind, then a
    # clean throughput burst and a graceful drain.
    server = ServerProcess(
        wal_path, endpoints_file, preset=preset, seed=seed, time_scale=time_scale
    )
    await server.start()
    stats = await server.stats()
    _check_restart(stats["reconciliation"], "final restart")
    clean = await run_stress(
        StressConfig(
            smtp_port=server.smtp_port,
            web_port=server.web_port,
            rate=rate,
            messages=messages_per_burst,
            connections=connections,
            seed=rng_seed - 1,
        )
    )
    cumulative_acked += clean["acked"]
    outcome = await server.terminate()
    if outcome["exit_code"] != 0:
        raise ChaosError(f"graceful shutdown exited rc={outcome['exit_code']}")
    shutdown = outcome["shutdown"]
    if not shutdown or not shutdown["reconciled"]:
        raise ChaosError(f"shutdown reconciliation failed: {shutdown}")
    if shutdown["accepted"] < cumulative_acked:
        raise ChaosError(
            f"graceful drain lost messages: {cumulative_acked} acked vs "
            f"{shutdown['accepted']} accepted"
        )
    return {
        "kills": kills,
        "rounds": rounds,
        "cumulative_acked": cumulative_acked,
        "zero_loss": True,
        "final_reconciliation": shutdown,
        "graceful_exit_code": outcome["exit_code"],
        "torn_tails_seen": sum(
            1 for r in rounds if r["torn_tail_bytes_on_boot"]
        ),
        "clean_burst": clean,
    }


__all__ = ["ChaosError", "ServerProcess", "run_chaos", "START_DEADLINE"]
