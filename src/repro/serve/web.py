"""The HTTP sidecar: CAPTCHA solves, digest actions, health, and ops.

A deliberately tiny hand-rolled HTTP/1.1 server (the container has no web
framework, and the surface is six routes). Reads are JSON straight off
the in-memory engine; *mutations* never touch the engine directly — they
become ``{"kind": "web", ...}`` records submitted through the same
admission queue and WAL as SMTP mail, so a CAPTCHA solve enjoys the exact
same durability and replay guarantees as an accepted message, and the
backpressure story is uniform (a full queue means 503 here, 421 on SMTP).

Routes::

    GET  /healthz            liveness + queue depth + shed level
    GET  /readyz             503 until WAL replay has reconciled
    GET  /stats              full counter dump + ledger reconciliation
    GET  /directory          companies/users/sender domains (for sstress)
    POST /challenge/open     {company, challenge_id}
    POST /challenge/attempt  {company, challenge_id, success}
    POST /challenge/solve    {company, challenge_id}
    POST /digest/release     {company, user, msg_id}
    POST /digest/delete      {company, user, msg_id}
    POST /shed               {level}   — pin the degradation ladder (ops)

Connections are one-shot (``Connection: close``): the clients are the
load generator and curl, neither needs keep-alive.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.net.smtp import Reply
from repro.serve.admission import MAX_SHED_LEVEL
from repro.serve.service import LiveCrService

MAX_HEADER_BYTES = 8 * 1024
MAX_BODY_BYTES = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Engine reply code → HTTP status for journaled web mutations.
_REPLY_STATUS = {
    Reply.OK: 200,
    Reply.MAILBOX_UNAVAILABLE: 404,
}

#: (action, required body fields) per mutation route.
_MUTATIONS = {
    "/challenge/open": ("open", ("company", "challenge_id")),
    "/challenge/attempt": ("attempt", ("company", "challenge_id")),
    "/challenge/solve": ("solve", ("company", "challenge_id")),
    "/digest/release": ("release", ("company", "user", "msg_id")),
    "/digest/delete": ("delete", ("company", "user", "msg_id")),
}


class WebFrontend:
    """Health, stats, and journaled web actions over HTTP."""

    def __init__(
        self,
        service: LiveCrService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        request_deadline: float = 30.0,
        reply_deadline: float = 15.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.request_deadline = request_deadline
        self.reply_deadline = reply_deadline
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_HEADER_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection ----------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await asyncio.wait_for(
                self._request(reader), self.request_deadline
            )
        except asyncio.TimeoutError:
            status, payload = 408, {"error": "request timeout"}
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception:  # a handler bug must not kill the server
            status, payload = 500, {"error": "internal error"}
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, dict]:
        raw = await reader.readuntil(b"\r\n\r\n")
        if len(raw) > MAX_HEADER_BYTES:
            return 413, {"error": "headers too large"}
        head = raw.decode("latin-1")
        request_line, _, header_block = head.partition("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}
        method, target, _version = parts
        path = target.split("?", 1)[0]
        content_length = 0
        for header in header_block.split("\r\n"):
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad content-length"}
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": "body too large"}
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return await self._route(method, path, body)

    # -- routing -------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        service = self.service
        if method == "GET":
            if path == "/healthz":
                return 200, service.health()
            if path == "/readyz":
                if service.ready:
                    return 200, {"ready": True}
                return 503, {"ready": False}
            if path == "/stats":
                return 200, service.stats_view()
            if path == "/directory":
                return 200, service.directory()
            return 404, {"error": "no such route"}
        if method != "POST":
            return 405, {"error": "method not allowed"}

        try:
            payload = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not JSON"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}

        if path == "/shed":
            level = payload.get("level")
            if not isinstance(level, int):
                return 400, {"error": "level must be an integer"}
            pinned = service.ladder.pin(level)
            service._apply_shed_level(pinned)
            return 200, {"level": pinned, "max_level": MAX_SHED_LEVEL}

        if path not in _MUTATIONS:
            return 404, {"error": "no such route"}
        action, required = _MUTATIONS[path]
        missing = [name for name in required if name not in payload]
        if missing:
            return 400, {"error": f"missing fields: {', '.join(missing)}"}
        record = {"kind": "web", "action": action}
        for name in required:
            record[name] = payload[name]
        if action == "attempt":
            record["success"] = bool(payload.get("success"))
        future = service.try_submit(record)
        if future is None:
            return 503, {"error": "admission queue full, retry later"}
        try:
            code = await asyncio.wait_for(future, self.reply_deadline)
        except asyncio.TimeoutError:
            service.stats.refused_deadline += 1
            return 503, {"error": "engine deadline expired, retry later"}
        status = _REPLY_STATUS.get(code, 500)
        return status, {"applied": status == 200, "code": int(code)}


__all__ = ["WebFrontend"]
