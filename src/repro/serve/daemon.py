"""Process harness for the live service: boot, announce, run, shut down.

``python -m repro serve`` lands here. The daemon recovers the WAL,
starts the engine worker and both frontends, writes the bound ports to
an *endpoints file* (ports default to 0 = OS-assigned, so parallel test
runs never collide), and then waits for SIGTERM/SIGINT. Graceful
shutdown drains the admission queue through the engine — every envelope
that was 250-acked or queued gets applied — then closes the WAL and
prints the final reconciliation as JSON on stdout, exiting 0 only if the
ledgers reconciled. SIGKILL skips all of that by definition; that path
is covered by WAL replay on the next boot, which is the entire point.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from typing import Optional

from repro.serve.service import LiveCrService
from repro.serve.smtp_server import SmtpFrontend
from repro.serve.web import WebFrontend


async def serve_forever(
    preset: str = "tiny",
    seed: int = 7,
    wal_path: str = "serve.wal",
    *,
    host: str = "127.0.0.1",
    smtp_port: int = 0,
    web_port: int = 0,
    endpoints_file: Optional[str] = None,
    time_scale: float = 1.0,
    queue_size: int = 256,
    batch_max: int = 64,
    engine_delay: float = 0.0,
    ready_event: Optional[asyncio.Event] = None,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns the exit code."""
    service = LiveCrService(
        preset,
        seed,
        wal_path,
        queue_size=queue_size,
        batch_max=batch_max,
        time_scale=time_scale,
        engine_delay=engine_delay,
    )
    service.recover()
    await service.start()
    smtp = SmtpFrontend(service, host, smtp_port)
    web = WebFrontend(service, host, web_port)
    await smtp.start()
    await web.start()

    if endpoints_file:
        announcement = {
            "pid": os.getpid(),
            "host": host,
            "smtp_port": smtp.port,
            "web_port": web.port,
            "wal_path": wal_path,
            "recovered_records": service.wal.appended_seq,
            "recovery_reconciled": service.last_reconciliation["reconciled"],
        }
        tmp = endpoints_file + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(announcement, fh)
        os.replace(tmp, endpoints_file)  # atomic: readers never see half

    print(
        f"serve: smtp={host}:{smtp.port} web={host}:{web.port} "
        f"wal={wal_path} recovered={service.wal.appended_seq} "
        f"(reconciled={service.last_reconciliation['reconciled']})",
        file=sys.stderr,
        flush=True,
    )
    if ready_event is not None:
        ready_event.set()

    stop = asyncio.get_running_loop().create_future()

    def _request_stop() -> None:
        if not stop.done():
            stop.set_result(None)

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, _request_stop)
    try:
        await stop
    finally:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
        await smtp.close()
        await web.close()
        await service.close()
    final = service.reconcile()
    print(json.dumps({"shutdown": final}), flush=True)
    return 0 if final["reconciled"] else 3


__all__ = ["serve_forever"]
