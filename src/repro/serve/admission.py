"""Admission control for the live frontend: bounded queue accounting and
the graceful-degradation ladder.

The admission queue itself is a plain bounded ``asyncio.Queue`` owned by
:class:`~repro.serve.service.LiveCrService`; this module holds the two
pieces of policy around it:

* :class:`LiveStats` — every counter the health/stats endpoints and the
  load generator report against;
* :class:`DegradationLadder` — queue-depth-driven shed level with
  hysteresis, so sustained overload degrades the pipeline *in stages*
  (full chain → chain minus auxiliary members → quarantine-by-default)
  and load removal walks it back up. Every transition is recorded, which
  is what makes the ladder observable and reversible rather than folklore.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Tuple

#: Shed levels, shallowest to deepest. Level 1 sheds the PR 9 auxiliary
#: chain members (content / reputation); level 2 quarantines gray mail
#: without chain or challenge. Nothing is ever silently dropped at any
#: level — deeper levels trade *classification quality* for throughput.
MAX_SHED_LEVEL = 2


@dataclass
class LiveStats:
    """Counters the live service exposes via ``/stats``."""

    #: Messages acknowledged with 250 (WAL-durable by construction).
    acked: int = 0
    #: Envelopes tempfailed with 421 because the admission queue was full.
    refused_full: int = 0
    #: Envelopes tempfailed with 421 because a phase deadline expired.
    refused_deadline: int = 0
    #: Accepted-then-dropped by the engine's MTA-IN checks (5xx replied).
    mta_dropped: int = 0
    #: RCPTs refused at the door: no installation accepts the domain.
    unrouted_rcpts: int = 0
    #: Envelope addresses rejected as malformed (501).
    malformed: int = 0
    #: Web mutations journaled and applied.
    web_applied: int = 0
    #: Web mutations that were stale/unknown by apply time (counted, not
    #: errors — the legal race with expiry and digests).
    web_stale: int = 0
    #: Message payload bytes accepted.
    bytes_in: int = 0
    #: WAL group-commit batches and the records they covered.
    fsync_batches: int = 0
    fsync_records: int = 0
    #: SMTP sessions opened / currently open.
    sessions: int = 0
    sessions_open: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class DegradationLadder:
    """Hysteresis-driven shed level derived from admission-queue depth.

    ``up[i]`` is the queue-fill fraction at which level ``i`` escalates to
    ``i+1``; ``down[i]`` the fraction at which ``i+1`` relaxes back to
    ``i``. Up thresholds sit above down thresholds so the level cannot
    flap around a single watermark. ``observe`` is called by the engine
    worker with the instantaneous depth; transitions are timestamped and
    kept for the health endpoint.
    """

    capacity: int
    up: Tuple[float, float] = (0.55, 0.85)
    down: Tuple[float, float] = (0.20, 0.50)
    level: int = 0
    #: (wall time, old level, new level, queue depth) per transition.
    transitions: List[Tuple[float, int, int, int]] = field(default_factory=list)

    def observe(self, depth: int) -> int:
        """Update the shed level for *depth*; returns the (new) level."""
        fraction = depth / self.capacity if self.capacity else 0.0
        while self.level < MAX_SHED_LEVEL and fraction >= self.up[self.level]:
            self._move(self.level + 1, depth)
        while self.level > 0 and fraction <= self.down[self.level - 1]:
            self._move(self.level - 1, depth)
        return self.level

    def pin(self, level: int) -> int:
        """Force the level (ops override / tests). Recorded like any other
        transition; the next ``observe`` resumes normal hysteresis."""
        level = max(0, min(MAX_SHED_LEVEL, level))
        if level != self.level:
            self._move(level, -1)
        return self.level

    def _move(self, new_level: int, depth: int) -> None:
        self.transitions.append((time.time(), self.level, new_level, depth))
        self.level = new_level

    def transitions_as_dicts(self) -> List[dict]:
        return [
            {"wall": wall, "from": old, "to": new, "depth": depth}
            for wall, old, new, depth in self.transitions
        ]


__all__ = ["DegradationLadder", "LiveStats", "MAX_SHED_LEVEL"]
