# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench experiments reports stability sweep goldens clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) scripts/generate_experiments_md.py

stability:
	$(PYTHON) scripts/scale_stability.py

sweep:
	$(PYTHON) -m repro sweep --preset tiny --runs 4 --jobs 4

goldens:
	$(PYTHON) scripts/update_goldens.py

reports: bench experiments

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis .cache
	find . -name __pycache__ -type d -exec rm -rf {} +
