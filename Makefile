# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-check bench-update experiments reports \
	stability sweep goldens scenarios frontier serve-smoke clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# CI regression gate: re-measure HEAD vs the newest committed entry's
# recorded baseline commit and fail on a >20% ratio regression.
bench-check:
	$(PYTHON) scripts/update_bench.py --check

# Refresh the committed bench trajectory for a PR, e.g.:
#   make bench-update PR=7 BASELINE=<commit> BASELINE_PR=6
bench-update:
	$(PYTHON) scripts/update_bench.py --pr $(PR) \
		--baseline-commit $(BASELINE) --baseline-pr $(BASELINE_PR)

experiments:
	$(PYTHON) scripts/generate_experiments_md.py

stability:
	$(PYTHON) scripts/scale_stability.py

sweep:
	$(PYTHON) -m repro sweep --preset tiny --runs 4 --jobs 4

goldens:
	$(PYTHON) scripts/update_goldens.py

# Run the full declarative scenario pack (audited) and every verdict.
scenarios:
	$(PYTHON) scripts/scenario_smoke.py --preset tiny --seed 7

# Reduced FP/FN frontier (clean row + one attack, every chain) with the
# non-degeneracy gate; `python -m repro experiment frontier` is the full one.
frontier:
	$(PYTHON) scripts/frontier_smoke.py --preset tiny

# Live-service chaos gate: boot the real server subprocess, drive open-loop
# SMTP load, SIGKILL it mid-burst 20 times, and assert zero accepted-message
# loss via WAL replay + ledger reconciliation on every restart.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py --kills 20 \
		--artifact serve_smoke_report.json

reports: bench experiments

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis .cache
	find . -name __pycache__ -type d -exec rm -rf {} +
